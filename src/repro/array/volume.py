"""A complete RAID-6 volume over any registered array-code layout.

This is the substrate the paper's storage scenarios run on: a set of
:class:`~repro.array.disk.SimDisk` devices striped by an
:class:`~repro.array.mapping.AddressMapper`, encoded by a
:class:`~repro.codec.encoder.StripeCodec`.  It supports the full RAID-6
life-cycle:

* normal reads, and degraded reads that reconstruct on the fly;
* writes with the real controller data paths — full-stripe encode,
  partial-stripe read-modify-write with parity-delta patching, and
  reconstruct-write when running degraded;
* failure injection for up to two disks, replacement, and rebuild
  (single-disk rebuild uses the hybrid recovery planner to fetch the
  minimum number of elements — the ~25 % saving of §III-D);
* scrubbing (parity verification across the whole volume).

Disk read/write counters make every claimed I/O saving observable, which
the integration tests exploit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.array.disk import SimDisk
from repro.array.mapping import AddressMapper
from repro.codes.base import Cell, CodeLayout
from repro.codec.batch import blank_batch, encode_batch
from repro.codec.decoder import ChainDecoder
from repro.codec.encoder import StripeCodec, _toposort_groups
from repro.codec.gauss import GaussianDecoder
from repro.exceptions import (
    AddressError,
    DecodeError,
    FaultToleranceExceeded,
    InconsistentStripeError,
    LatentSectorError,
)
from repro.recovery.planner import hybrid_plan
from repro.util.validation import require, require_positive
from repro.util.xor import xor_into


class RAID6Volume:
    """An operational RAID-6 volume."""

    def __init__(
        self,
        layout: CodeLayout,
        num_stripes: int = 64,
        element_size: int = 4096,
        rotate: bool = False,
    ) -> None:
        require_positive(num_stripes, "num_stripes")
        self.layout = layout
        self.codec = StripeCodec(layout, element_size)
        self.mapper = AddressMapper(layout, num_stripes, rotate=rotate)
        self.disks: List[SimDisk] = [
            SimDisk(i, self.mapper.disk_capacity, element_size)
            for i in range(layout.cols)
        ]
        self._chain = ChainDecoder(self.codec)
        self._gauss = GaussianDecoder(self.codec)
        self._encode_order = _toposort_groups(layout)

    # -- basic properties ---------------------------------------------------

    @property
    def element_size(self) -> int:
        return self.codec.element_size

    @property
    def num_elements(self) -> int:
        """Logical capacity in data elements."""
        return self.mapper.num_elements

    @property
    def failed_disks(self) -> Tuple[int, ...]:
        return tuple(d.disk_id for d in self.disks if d.failed)

    def io_counters(self) -> Dict[int, Tuple[int, int]]:
        """disk id -> (reads, writes)."""
        return {d.disk_id: (d.read_count, d.write_count) for d in self.disks}

    def reset_io_counters(self) -> None:
        """Zero every disk's read/write counters."""
        for d in self.disks:
            d.reset_counters()

    # -- failure lifecycle -----------------------------------------------------

    def fail_disk(self, disk: int) -> None:
        """Kill a disk.  At most two may be down at once."""
        require(0 <= disk < len(self.disks), f"no disk {disk}")
        if self.disks[disk].failed:
            return
        if len(self.failed_disks) >= 2:
            raise FaultToleranceExceeded(
                "RAID-6 already has two failed disks"
            )
        self.disks[disk].fail()

    def replace_and_rebuild(self, disk: int) -> int:
        """Swap in a blank disk and reconstruct its contents.

        Returns the number of elements read during the rebuild.  With a
        single failure the hybrid planner drives the reads; with a double
        failure the chain (or Gaussian) decoder rebuilds this disk's share.
        """
        require(self.disks[disk].failed, f"disk {disk} is not failed")
        other_failed = [f for f in self.failed_disks if f != disk]
        reads_before = sum(d.read_count for d in self.disks)
        self.disks[disk].replace()

        for stripe in range(self.mapper.num_stripes):
            if other_failed:
                self._rebuild_stripe_double(stripe, disk, other_failed[0])
            else:
                self._rebuild_stripe_single(stripe, disk)
        return sum(d.read_count for d in self.disks) - reads_before

    def _rebuild_stripe_single(self, stripe: int, disk: int) -> None:
        col = self.mapper.col_on_disk(stripe, disk)
        plan = hybrid_plan(self.layout, col)
        cache: Dict[Cell, np.ndarray] = {}
        try:
            for cell in plan.reads:
                cache[cell] = self._read_cell(stripe, cell)
        except LatentSectorError:
            # a medium error inside the minimal read set: fall back to a
            # full reconstruct of the stripe, which tolerates extra losses
            buf = self._load_stripe(stripe, missing_cols=(col,))
            for cell in self.layout.cells_in_column(col):
                self._write_cell(stripe, cell, buf[cell.row, cell.col])
            return
        for cell, group in plan.choices:
            acc = np.zeros(self.element_size, dtype=np.uint8)
            for other in group.cells:
                if other != cell:
                    xor_into(acc, cache[other])
            self._write_cell(stripe, cell, acc)

    def _rebuild_stripe_double(
        self, stripe: int, disk: int, other_failed: int
    ) -> None:
        col = self.mapper.col_on_disk(stripe, disk)
        other_col = self.mapper.col_on_disk(stripe, other_failed)
        buf = self._load_stripe(stripe, missing_cols=(col, other_col))
        for cell in self.layout.cells_in_column(col):
            self._write_cell(stripe, cell, buf[cell.row, cell.col])

    def inject_latent_error(self, disk: int, stripe: int, row: int) -> None:
        """Mark one element of ``disk`` unreadable (medium error).

        ``stripe``/``row`` address the element the way the mapper lays it
        out; the next read of that element raises until something rewrites
        or repairs it.
        """
        require(0 <= disk < len(self.disks), f"no disk {disk}")
        offset = stripe * self.layout.rows + row
        self.disks[disk].mark_bad(offset)

    def scrub_and_repair(self) -> Dict[int, List[Cell]]:
        """Find latent sector errors volume-wide and rewrite them.

        Returns ``{stripe: [repaired cells]}``.  Requires no failed disks
        (like :meth:`scrub`); raises :class:`InconsistentStripeError` if a
        stripe's parity still disagrees after repair (silent corruption —
        never auto-fixed because the bad cell cannot be located).
        """
        require(not self.failed_disks,
                "cannot scrub with failed disks present")
        repaired: Dict[int, List[Cell]] = {}
        for stripe in range(self.mapper.num_stripes):
            bad: List[Cell] = []
            for col in range(self.layout.cols):
                for cell in self.layout.cells_in_column(col):
                    try:
                        self._read_cell(stripe, cell)
                    except LatentSectorError:
                        bad.append(cell)
            if bad:
                buf = self._load_stripe(stripe, missing_cols=())
                for cell in bad:
                    self._write_cell(stripe, cell, buf[cell.row, cell.col])
                repaired[stripe] = bad
            buf = self._load_stripe(stripe, missing_cols=())
            if not self.codec.parity_ok(buf):
                raise InconsistentStripeError(
                    f"stripe {stripe} parity mismatch after repair"
                )
        return repaired

    def scrub(self) -> List[int]:
        """Verify parity of every stripe; returns inconsistent stripe ids.

        Requires a healthy array — parity cannot be checked through a
        failed disk.
        """
        require(not self.failed_disks,
                "cannot scrub with failed disks present")
        bad = []
        for stripe in range(self.mapper.num_stripes):
            buf = self._load_stripe(stripe, missing_cols=())
            if not self.codec.parity_ok(buf):
                bad.append(stripe)
        return bad

    # -- reads ---------------------------------------------------------------

    def read(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` logical elements starting at ``start``.

        Transparently reconstructs elements on failed disks.
        """
        require_positive(count, "count")
        if start < 0 or start + count > self.num_elements:
            raise AddressError(
                f"read [{start}, {start + count}) outside volume of "
                f"{self.num_elements} elements"
            )
        out = np.empty((count, self.element_size), dtype=np.uint8)
        failed = set(self.failed_disks)
        # group the range per stripe so reconstruction decodes once
        by_stripe: Dict[int, List[Tuple[int, Cell]]] = {}
        for k in range(count):
            loc = self.mapper.locate(start + k)
            by_stripe.setdefault(loc.stripe, []).append((k, loc.cell))
        for stripe, items in by_stripe.items():
            lost_cols = {
                self.mapper.col_on_disk(stripe, f) for f in failed
            }
            needs_repair = any(
                cell.col in lost_cols for _, cell in items
            )
            if not needs_repair:
                try:
                    for k, cell in items:
                        out[k] = self._read_cell(stripe, cell)
                    continue
                except LatentSectorError:
                    pass  # medium error: reconstruct the stripe below
            elif self._degraded_read_via_plan(stripe, items, out):
                continue
            buf = self._load_stripe(
                stripe, missing_cols=tuple(sorted(lost_cols))
            )
            for k, cell in items:
                out[k] = buf[cell.row, cell.col]
        return out

    def _degraded_read_via_plan(self, stripe, items, out) -> bool:
        """Serve a degraded stripe read by executing the access engine's
        minimal read plan (the same plan the Figure-6/7 simulations
        price, so real disk counters match the model by construction).

        Returns ``False`` to fall back to full-stripe reconstruction —
        when the pattern needs algebraic decoding or a fetch trips over a
        latent sector error.
        """
        plan = self._read_planner().plan_for(stripe, [c for _, c in items])
        if plan.recipe is None:
            return False
        cache: Dict[Cell, np.ndarray] = {}
        try:
            for cell in sorted(plan.fetch):
                cache[cell] = self._read_cell(stripe, cell)
        except LatentSectorError:
            return False
        for step in plan.recipe:
            acc = np.zeros(self.element_size, dtype=np.uint8)
            for read in step.reads:
                xor_into(acc, cache[read])
            cache[step.cell] = acc
        for k, cell in items:
            out[k] = cache[cell]
        return True

    def _read_planner(self) -> "_VolumeReadPlanner":
        state = self.failed_disks
        planner = getattr(self, "_planner_cache", None)
        if planner is None or planner.failed != state:
            planner = _VolumeReadPlanner(self, state)
            self._planner_cache = planner
        return planner

    # -- writes ----------------------------------------------------------------

    def write(self, start: int, data: np.ndarray) -> None:
        """Write ``data`` (``(count, element_size)`` uint8) at ``start``."""
        if data.ndim != 2 or data.shape[1] != self.element_size \
                or data.dtype != np.uint8:
            raise AddressError(
                f"data must be uint8 (count, {self.element_size}), got "
                f"{data.dtype} {data.shape}"
            )
        count = data.shape[0]
        if start < 0 or start + count > self.num_elements:
            raise AddressError(
                f"write [{start}, {start + count}) outside volume of "
                f"{self.num_elements} elements"
            )
        by_stripe: Dict[int, List[Tuple[Cell, np.ndarray]]] = {}
        for k in range(count):
            loc = self.mapper.locate(start + k)
            by_stripe.setdefault(loc.stripe, []).append((loc.cell, data[k]))
        # Full-stripe writes share one encode plan — run them through the
        # batched codec in a single pass; everything else (RMW patches,
        # reconstruct-writes) keeps the per-stripe controller paths.
        full: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]] = []
        rest: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]] = []
        for stripe, items in by_stripe.items():
            if len(items) == self.layout.num_data_cells:
                full.append((stripe, items))
            else:
                rest.append((stripe, items))
        if len(full) > 1:
            self._full_stripe_write_batched(full)
        else:
            rest = full + rest
        for stripe, items in rest:
            self._write_stripe_batch(stripe, items)

    def _full_stripe_write_batched(
        self, entries: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]
    ) -> None:
        """Encode every full-stripe write of one request queue together."""
        buf = blank_batch(self.codec, len(entries))
        for i, (_, items) in enumerate(entries):
            for cell, value in items:
                buf[i, cell.row, cell.col] = value
        encode_batch(self.codec, buf)
        for i, (stripe, _) in enumerate(entries):
            failed_cols = tuple(
                sorted(
                    self.mapper.col_on_disk(stripe, f)
                    for f in self.failed_disks
                )
            )
            self._store_stripe(stripe, buf[i], skip_cols=failed_cols)

    def _write_stripe_batch(
        self, stripe: int, items: List[Tuple[Cell, np.ndarray]]
    ) -> None:
        failed_cols = tuple(
            sorted(
                self.mapper.col_on_disk(stripe, f)
                for f in self.failed_disks
            )
        )
        if len(items) == self.layout.num_data_cells:
            self._full_stripe_write(stripe, items, failed_cols)
        elif failed_cols:
            self._reconstruct_write(stripe, items, failed_cols)
        else:
            try:
                self._rmw_write(stripe, items)
            except LatentSectorError:
                # RMW tripped over a medium error while fetching old
                # values: reconstruct the stripe (the loader decodes the
                # unreadable cells), apply the batch, re-encode.  Any cells
                # the aborted RMW already wrote simply get rewritten.
                self._reconstruct_write(stripe, items, failed_cols)

    def _full_stripe_write(self, stripe, items, failed_cols) -> None:
        buf = self.codec.blank_stripe()
        for cell, value in items:
            buf[cell.row, cell.col] = value
        self.codec.encode(buf)
        self._store_stripe(stripe, buf, skip_cols=failed_cols)

    def _reconstruct_write(self, stripe, items, failed_cols) -> None:
        buf = self._load_stripe(stripe, missing_cols=failed_cols)
        for cell, value in items:
            buf[cell.row, cell.col] = value
        self.codec.encode(buf)
        self._store_stripe(stripe, buf, skip_cols=failed_cols)

    def _rmw_write(self, stripe, items) -> None:
        """Healthy-array partial write: patch parity with XOR deltas."""
        deltas: Dict[Cell, np.ndarray] = {}
        for cell, value in items:
            old = self._read_cell(stripe, cell)
            delta = np.bitwise_xor(old, value)
            if delta.any():
                deltas[cell] = delta
                self._write_cell(stripe, cell, value)
        if not deltas:
            return
        for group in self._encode_order:
            gdelta: Optional[np.ndarray] = None
            for member in group.members:
                d = deltas.get(member)
                if d is None:
                    continue
                if gdelta is None:
                    gdelta = d.copy()
                else:
                    xor_into(gdelta, d)
            if gdelta is not None and gdelta.any():
                old = self._read_cell(stripe, group.parity)
                xor_into(old, gdelta)
                self._write_cell(stripe, group.parity, old)
                deltas[group.parity] = gdelta

    # -- stripe buffer I/O ---------------------------------------------------------

    def _read_cell(self, stripe: int, cell: Cell) -> np.ndarray:
        loc = self.mapper.locate_cell(stripe, cell)
        return self.disks[loc.disk].read(loc.offset)

    def _write_cell(self, stripe: int, cell: Cell, value: np.ndarray) -> None:
        loc = self.mapper.locate_cell(stripe, cell)
        self.disks[loc.disk].write(loc.offset, value)

    def _load_stripe(
        self, stripe: int, missing_cols: Sequence[int]
    ) -> np.ndarray:
        """Read a stripe into memory, reconstructing everything unreadable.

        Losses come from two sources: whole columns on failed disks
        (``missing_cols``) and individual latent sector errors discovered
        while reading.  Both are decoded together at cell granularity, so
        e.g. one failed disk plus a medium error elsewhere still recovers.
        """
        buf = self.codec.blank_stripe()
        missing = set(missing_cols)
        lost: List[Cell] = []
        for col in range(self.layout.cols):
            if col in missing:
                lost.extend(self.layout.cells_in_column(col))
                continue
            for cell in self.layout.cells_in_column(col):
                try:
                    buf[cell.row, cell.col] = self._read_cell(stripe, cell)
                except LatentSectorError:
                    lost.append(cell)
        if lost:
            self._decode_cells(buf, lost)
        return buf

    def _decode_cells(self, buf: np.ndarray, lost: List[Cell]) -> None:
        """Chain-decode when possible, Gaussian otherwise."""
        if self.layout.chain_decodable:
            try:
                self._chain.decode_cells(buf, lost)
                return
            except DecodeError:
                pass  # odd loss pattern — let the oracle try
        self._gauss.decode_cells(buf, lost)

    def _store_stripe(
        self, stripe: int, buf: np.ndarray, skip_cols: Sequence[int] = ()
    ) -> None:
        skip = set(skip_cols)
        for col in range(self.layout.cols):
            if col in skip:
                continue
            for cell in self.layout.cells_in_column(col):
                self._write_cell(stripe, cell, buf[cell.row, cell.col])

    def __repr__(self) -> str:
        return (
            f"<RAID6Volume {self.layout.name} p={self.layout.p} "
            f"{len(self.disks)} disks x {self.mapper.disk_capacity} "
            f"elements, failed={list(self.failed_disks)}>"
        )


class _VolumeReadPlanner:
    """Bridges the volume to the access engine's degraded read planning.

    Built lazily per failure state; delegates to
    :meth:`repro.iosim.engine.AccessEngine._plan_stripe_read` with the
    volume's exact geometry (stripes, rotation, failed disks).
    """

    def __init__(self, volume: "RAID6Volume", failed: Tuple[int, ...]):
        from repro.iosim.engine import AccessEngine

        self.failed = failed
        self._engine = AccessEngine(
            volume.layout,
            num_stripes=volume.mapper.num_stripes,
            rotate=volume.mapper.rotate,
            failed_disks=failed,
        )

    def plan_for(self, stripe: int, wanted):
        return self._engine._plan_stripe_read(stripe, wanted)
