"""A complete RAID-6 volume over any registered array-code layout.

This is the substrate the paper's storage scenarios run on: a set of
:class:`~repro.array.disk.SimDisk` devices striped by an
:class:`~repro.array.mapping.AddressMapper`, encoded by a
:class:`~repro.codec.encoder.StripeCodec`.  It supports the full RAID-6
life-cycle:

* normal reads, and degraded reads that reconstruct on the fly;
* **self-healing I/O** (`docs/robustness.md`): transient errors are
  retried with backoff, latent sector errors hit during normal reads are
  reconstructed from parity and remapped inline, and disks that keep
  erroring are escalated to FAILED by the
  :class:`~repro.faults.policy.ErrorPolicy`;
* writes with the real controller data paths — full-stripe encode,
  partial-stripe read-modify-write with parity-delta patching, and
  reconstruct-write when running degraded;
* failure injection for up to two disks, replacement, and rebuild —
  either blocking (:meth:`RAID6Volume.replace_and_rebuild`) or
  incremental via a resumable :class:`~repro.faults.health.RebuildCursor`
  that interleaves with foreground traffic (single-disk rebuild uses the
  hybrid recovery planner to fetch the minimum number of elements — the
  ~25 % saving of §III-D);
* scrubbing (parity verification across the whole volume) and
  write-hole repair (:meth:`RAID6Volume.resync_stripes`) after a
  simulated crash.

Any stripe that has lost more than the code tolerates raises a typed
:class:`~repro.exceptions.UnrecoverableStripeError` naming the stripe,
never a raw decoder or disk exception.  Disk read/write counters make
every claimed I/O saving observable, which the integration tests exploit.
"""

from __future__ import annotations

import os
import threading
import weakref
import zlib
from contextlib import contextmanager
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.array.disk import SimDisk
from repro.array.mapping import AddressMapper
from repro.array.pipeline import StripePipeline, process_pool_enabled
from repro.codes.base import Cell, CodeLayout
from repro.codec.batch import blank_batch, decode_batch, encode_batch
from repro.codec.decoder import ChainDecoder
from repro.codec.encoder import StripeCodec, _toposort_groups
from repro.codec.gauss import GaussianDecoder
from repro.exceptions import (
    AddressError,
    ChecksumMismatchError,
    DecodeError,
    DiskFailedError,
    FaultToleranceExceeded,
    InconsistentStripeError,
    LatentSectorError,
    TransientIOError,
    UnrecoverableStripeError,
)
from repro.faults.health import HealthState, RebuildCursor
from repro.faults.policy import ErrorCounters, ErrorPolicy, HealEvent
from repro.journal.intent import WriteIntent, WriteIntentLog
from repro.recovery.planner import cached_hybrid_plan
from repro.util.validation import require, require_positive
from repro.util.xor import xor_into

#: Errors that make a single element unreadable without killing the disk.
#: A checksum mismatch belongs here by design: a block whose bytes no
#: longer match their out-of-band CRC is a *located erasure* — exactly as
#: recoverable as a latent sector error, and handled by the same
#: reconstruct-and-heal ladder (docs/robustness.md, "Silent corruption").
_CELL_ERRORS = (LatentSectorError, TransientIOError, ChecksumMismatchError)


class ScrubReport(Dict[int, List[Cell]]):
    """Result of :meth:`RAID6Volume.scrub_and_repair`.

    Behaves exactly like the historical ``{stripe: [repaired cells]}``
    mapping, with the scrub's I/O accounting attached:
    ``elements_read`` (successful element fetches), ``elements_written``
    (repair rewrites) and ``stripes_scanned``.
    """

    def __init__(self) -> None:
        super().__init__()
        self.elements_read = 0
        self.elements_written = 0
        self.stripes_scanned = 0

    @property
    def repaired_count(self) -> int:
        return sum(len(cells) for cells in self.values())

    def __repr__(self) -> str:
        return (
            f"<ScrubReport stripes={self.stripes_scanned} "
            f"repaired={self.repaired_count} reads={self.elements_read} "
            f"writes={self.elements_written}>"
        )


class RAID6Volume:
    """An operational RAID-6 volume."""

    def __init__(
        self,
        layout: CodeLayout,
        num_stripes: int = 64,
        element_size: int = 4096,
        rotate: bool = False,
        policy: Optional[ErrorPolicy] = None,
        workers: Optional[int] = None,
        journal: Optional[WriteIntentLog] = None,
        process_pool: Optional[bool] = None,
    ) -> None:
        require_positive(num_stripes, "num_stripes")
        self.layout = layout
        self.codec = StripeCodec(layout, element_size)
        self.mapper = AddressMapper(layout, num_stripes, rotate=rotate)
        # All disks share one (capacity, cols, element_size) tensor: disk
        # ``i`` owns the strided column view ``backing[:, i, :]``.  Flat
        # element (stripe, row, col) therefore lives at linear index
        # ``(stripe * rows + row) * cols + col``, which is what lets a
        # stripe-aligned read of a row-major layout hand out a zero-copy
        # view (see :meth:`read`).
        #
        # Under ``REPRO_PROCESS_POOL=1`` (or ``process_pool=True``) the
        # tensor is placed in POSIX shared memory instead of private
        # pages, so forked worker processes operate on the *same* backing
        # — the GIL-free fallback for pure-numpy builds
        # (docs/performance.md, "Hot-path scaling").
        use_procs = process_pool_enabled(process_pool)
        shape = (self.mapper.disk_capacity, layout.cols, element_size)
        self._shm = None
        self._shm_name: Optional[str] = None
        if use_procs:
            try:
                from multiprocessing import shared_memory

                nbytes = int(np.prod(shape))
                self._shm = shared_memory.SharedMemory(
                    create=True, size=max(1, nbytes)
                )
                self._backing = np.ndarray(
                    shape, dtype=np.uint8, buffer=self._shm.buf
                )
                self._backing[:] = 0
                self._shm_name = self._shm.name
                # unlink when the volume is collected (or at interpreter
                # exit), so test-suite volumes never leak /dev/shm pages
                self._shm_finalizer = weakref.finalize(
                    self, _release_shm, self._shm
                )
            except Exception:
                self._shm = None
                self._shm_name = None
                use_procs = False
        if self._shm is None:
            self._backing = np.zeros(shape, dtype=np.uint8)
        self._flat_backing = self._backing.reshape(-1, element_size)
        self.disks: List[SimDisk] = [
            SimDisk(i, self.mapper.disk_capacity, element_size,
                    store=self._backing[:, i, :])
            for i in range(layout.cols)
        ]
        self.policy = policy if policy is not None else ErrorPolicy()
        #: Optional write-intent journal (``docs/robustness.md``, "Crash
        #: consistency").  When attached, every destructive stripe write
        #: records an intent before touching disk and commits it after;
        #: ``None`` keeps the write paths byte- and counter-identical to
        #: the unjournaled volume.
        self.journal = journal
        #: ChecksumStore restored by :func:`~repro.array.persistence.
        #: load_volume` from a v2 archive (``None`` otherwise); feed it to
        #: ``IntegrityChecker(volume, store=...)`` to resume verification.
        self.restored_checksums = None
        #: The attached :class:`~repro.array.integrity.IntegrityChecker`
        #: (set by its constructor, cleared by its ``detach()``).  When
        #: present *and* its ``verify_reads`` flag is on, the read paths
        #: verify block checksums edge-triggered — each block's first
        #: read since attach/write re-checks its CRC — and surface
        #: mismatches as :class:`ChecksumMismatchError` erasures.
        self.integrity = None
        self.error_counters = ErrorCounters(layout.cols)
        #: Audit trail of self-healing actions (see
        #: :class:`~repro.faults.policy.HealEvent`).
        self.heal_log: List[HealEvent] = []
        self._rebuild: Optional[RebuildCursor] = None
        self._chain = ChainDecoder(self.codec)
        self._gauss = GaussianDecoder(self.codec)
        self._encode_order = _toposort_groups(layout)
        #: Per-stripe task scheduler (serial unless REPRO_WORKERS / the
        #: ``workers`` argument enables threads — docs/performance.md).
        self.pipeline = StripePipeline(workers, process_pool=use_procs)
        self._policy_lock = threading.RLock()
        # Striped per-stripe write locks: two writers that touch the
        # same stripe (a cache destage racing a foreground RMW — the
        # serving coalescer's steady state under load) must serialise
        # their read-XOR-write parity updates or the stripe's parity
        # silently diverges from its data.  Stripe ``s`` maps to lock
        # ``s % len``; RLocks so the journaled chokepoint may nest into
        # the unjournaled one on the same thread.  Multi-stripe paths
        # acquire their whole lock set in sorted order (no cycles).
        self._stripe_locks: Tuple[threading.RLock, ...] = tuple(
            threading.RLock() for _ in range(min(64, num_stripes))
        )
        # Degraded-read planners, one per failure state (tuple of stale
        # disks).  A dict — not a single slot — because a rebuild splits
        # the volume into covered/uncovered regions whose states
        # alternate within one request, and a single-slot cache would
        # rebuild the AccessEngine (and its plan cache) on every flip.
        self._planner_cache: Dict[
            Tuple[int, ...], "_VolumeReadPlanner"
        ] = {}
        # data-cell set -> affected parity cells (journal digest footprint)
        self._footprint_cache: Dict[
            frozenset, Tuple[Cell, ...]
        ] = {}
        # dirty-cell pattern -> vectorised RMW parity steps (see
        # :meth:`_rmw_plan`)
        self._rmw_plan_cache: Dict[
            Tuple[Cell, ...], List[Tuple[Cell, Tuple[Cell, ...]]]
        ] = {}
        # -- vectorised-geometry tables (docs/performance.md) -------------
        self._col_rows: List[np.ndarray] = [
            np.array([c.row for c in layout.cells_in_column(col)],
                     dtype=np.intp)
            for col in range(layout.cols)
        ]
        self._data_rows = np.array(
            [c.row for c in layout.data_cells], dtype=np.intp
        )
        self._data_cols = np.array(
            [c.col for c in layout.data_cells], dtype=np.intp
        )
        self._parity_rows = np.array(
            [c.row for c in layout.parity_cells], dtype=np.intp
        )
        self._parity_cols = np.array(
            [c.col for c in layout.parity_cells], dtype=np.intp
        )
        self._full_stripe_col_counts = np.bincount(
            self._data_cols, minlength=layout.cols
        )
        #: Whether logical order is the row-major prefix of the matrix
        #: (D-Code/X-Code style: data rows on top, parity rows below) —
        #: the precondition for the zero-copy read view.
        self._row_major_data = all(
            cell.row == idx // layout.cols and cell.col == idx % layout.cols
            for idx, cell in enumerate(layout.data_cells)
        )

    # -- basic properties ---------------------------------------------------

    @property
    def element_size(self) -> int:
        return self.codec.element_size

    @property
    def num_elements(self) -> int:
        """Logical capacity in data elements."""
        return self.mapper.num_elements

    @property
    def failed_disks(self) -> Tuple[int, ...]:
        return tuple(d.disk_id for d in self.disks if d.failed)

    @property
    def health(self) -> HealthState:
        """HEALTHY / DEGRADED / REBUILDING (see ``docs/robustness.md``)."""
        if self._rebuild is not None and self._rebuild.active:
            return HealthState.REBUILDING
        if self.failed_disks:
            return HealthState.DEGRADED
        return HealthState.HEALTHY

    @property
    def rebuild_cursor(self) -> Optional[RebuildCursor]:
        """The active incremental rebuild, if any."""
        return self._rebuild

    def io_counters(self) -> Dict[int, Tuple[int, int]]:
        """disk id -> (reads, writes)."""
        return {d.disk_id: (d.read_count, d.write_count) for d in self.disks}

    def reset_io_counters(self) -> None:
        """Zero every disk's read/write counters."""
        for d in self.disks:
            d.reset_counters()

    # -- fast-path gating ------------------------------------------------------
    #
    # The vectorised tensor paths change neither data nor counters, but
    # they do change the *order* individual elements touch the disks — so
    # they only engage while the fault surface is quiet.  The moment a
    # fault hook is attached (chaos harness, injector tests) everything
    # drops back to the per-element serial walk, which keeps seed-driven
    # fault schedules bit-reproducible.  See docs/performance.md.

    def _journal_quiet(self) -> bool:
        """No crash-point phase hook armed on the journal.

        A phase hook (like a disk fault hook) defines crash points over
        the serial per-element operation order, so the tensor and
        parallel fast paths stand down while one is attached.  A journal
        *without* a hook never forces the slow paths.
        """
        journal = self.journal
        return journal is None or journal.phase_hook is None

    def _batch_write_ok(self) -> bool:
        """Tensor stores allowed: no fault or crash-point hooks anywhere."""
        return self._journal_quiet() and all(
            d.fault_hook is None for d in self.disks
        )

    def _batch_io_ok(self) -> bool:
        """Tensor loads allowed: no hooks and no latent sectors."""
        return all(
            d.fault_hook is None and not d._bad_sectors for d in self.disks
        )

    def _fast_read_ok(self) -> bool:
        """Whole-range gather allowed: quiet fault surface, no stale disks."""
        if self.failed_disks or (
            self._rebuild is not None and self._rebuild.active
        ):
            return False
        return self._batch_io_ok()

    def _parallel_ok(self) -> bool:
        """Concurrent per-stripe tasks allowed.

        Requires a parallel pipeline *and* no fault hooks: injected fault
        schedules are defined over the global disk-op order, which thread
        interleaving would scramble — the deterministic serial fallback
        of docs/performance.md.
        """
        return self.pipeline.parallel and self._journal_quiet() and all(
            d.fault_hook is None for d in self.disks
        )

    # -- failure lifecycle -----------------------------------------------------

    def _vulnerable_disks(self) -> Tuple[int, ...]:
        """Disks the redundancy is currently covering for: failed disks
        plus the target of an in-flight rebuild (its unrebuilt region is
        as good as failed)."""
        out = set(self.failed_disks)
        if self._rebuild is not None and self._rebuild.active:
            out.add(self._rebuild.disk)
        return tuple(sorted(out))

    def fail_disk(self, disk: int) -> None:
        """Kill a disk.  At most two may be down (or rebuilding) at once."""
        require(0 <= disk < len(self.disks), f"no disk {disk}")
        if self.disks[disk].failed:
            return
        others = set(self._vulnerable_disks()) - {disk}
        if len(others) >= 2:
            raise FaultToleranceExceeded(
                "RAID-6 already has two failed or rebuilding disks"
            )
        rebuild = self._rebuild
        if rebuild is not None and rebuild.active and rebuild.disk == disk:
            # the replacement died mid-rebuild: back to square one
            rebuild.abort()
        self.disks[disk].fail()

    def start_rebuild(self, disk: int, batch: int = 8) -> RebuildCursor:
        """Swap in a blank disk and return a resumable rebuild cursor.

        The volume enters REBUILDING; foreground reads and writes keep
        working throughout (degraded for stripes the cursor has not
        reached yet).  Drive the cursor with
        :meth:`~repro.faults.health.RebuildCursor.step` or
        :meth:`~repro.faults.health.RebuildCursor.run`.
        """
        require(self.disks[disk].failed, f"disk {disk} is not failed")
        require(self._rebuild is None or not self._rebuild.active,
                "a rebuild is already in progress")
        self.disks[disk].replace()
        if self.integrity is not None:
            # the platters just became a blank replacement: drop the old
            # disk's checksums (blank blocks match the implicit zero
            # digest) so the cursor's reconstruction writes re-record
            # fresh ones — a scrub right after rebuild reports zero
            # false positives
            self.integrity.on_disk_replaced(disk)
        cursor = RebuildCursor(self, disk, batch=batch)
        self._rebuild = cursor
        return cursor

    def replace_and_rebuild(self, disk: int) -> int:
        """Swap in a blank disk and reconstruct its contents (blocking).

        Returns the number of elements read during the rebuild.  With a
        single failure the hybrid planner drives the reads; with a double
        failure the chain (or Gaussian) decoder rebuilds this disk's share.
        Equivalent to ``start_rebuild(disk).run()``.
        """
        return self.start_rebuild(
            disk, batch=self.mapper.num_stripes
        ).run()

    def _rebuild_stripe_single(self, stripe: int, disk: int) -> None:
        col = self.mapper.col_on_disk(stripe, disk)
        plan = cached_hybrid_plan(self.layout, col)
        cache: Dict[Cell, np.ndarray] = {}
        try:
            for cell in plan.reads:
                cache[cell] = self._read_cell(stripe, cell)
        except _CELL_ERRORS + (DiskFailedError,):
            # a medium error inside the minimal read set (or a disk died
            # under it): escalate to a full reconstruct of the stripe,
            # which tolerates the extra loss (RAID-6 still has a second
            # parity family in hand)
            buf = self._load_stripe(stripe, missing_cols=(col,))
            for cell in self.layout.cells_in_column(col):
                self._write_cell(stripe, cell, buf[cell.row, cell.col])
            return
        for cell, group in plan.choices:
            acc = np.zeros(self.element_size, dtype=np.uint8)
            for other in group.cells:
                if other != cell:
                    xor_into(acc, cache[other])
            self._write_cell(stripe, cell, acc)

    def _rebuild_stripe_double(
        self, stripe: int, disk: int, other_failed: int
    ) -> None:
        col = self.mapper.col_on_disk(stripe, disk)
        other_col = self.mapper.col_on_disk(stripe, other_failed)
        buf = self._load_stripe(stripe, missing_cols=(col, other_col))
        for cell in self.layout.cells_in_column(col):
            self._write_cell(stripe, cell, buf[cell.row, cell.col])

    def _rebuild_stripes_batch(
        self, start: int, end: int, disk: int,
        other_failed: Optional[int] = None,
    ) -> int:
        """Rebuild stripes ``[start, end)`` of ``disk`` in one tensor pass.

        Returns the number of stripes rebuilt, or 0 when the batch
        preconditions do not hold (rotation, fault hooks, latent sectors,
        undecodable pattern) and the caller must fall back to the
        per-stripe walk.  Counter totals match the per-stripe path.
        """
        batch = end - start
        if batch < 2 or self.mapper.rotate or not self._batch_io_ok():
            return 0
        stripes = np.arange(start, end, dtype=np.intp)
        rows = self.layout.rows
        col = disk  # no rotation: layout column == disk id
        verifier = self._verifier()
        if other_failed is None:
            # single failure: execute the hybrid minimal-read plan once
            # over the whole stripe range — one gather per source cell
            plan = cached_hybrid_plan(self.layout, col)
            cache: Dict[Cell, np.ndarray] = {}
            for cell in plan.reads:
                offs = stripes * rows + cell.row
                block = self.disks[cell.col].read_block(offs)
                if verifier is not None and \
                        verifier.verify_rows(cell.col, offs, block).size:
                    # a rebuild source is rotten: fall back to the
                    # per-stripe walk, which reconstructs around it
                    return 0
                cache[cell] = block
            for cell, group in plan.choices:
                acc = np.zeros(
                    (batch, self.element_size), dtype=np.uint8
                )
                for other in group.cells:
                    if other != cell:
                        np.bitwise_xor(acc, cache[other], out=acc)
                self._disk_write_block(disk, stripes * rows + cell.row, acc)
            return batch
        # double failure: load survivors into a stripe tensor, decode the
        # two lost columns together, store only this disk's share
        other_col = other_failed
        buf = blank_batch(self.codec, batch)
        for c in range(self.layout.cols):
            if c in (col, other_col):
                continue
            col_rows = self._col_rows[c]
            offsets = (stripes[:, None] * rows + col_rows[None, :]).ravel()
            block = self.disks[c].read_block(offsets)
            if verifier is not None and \
                    verifier.verify_rows(c, offsets, block).size:
                return 0
            buf[:, col_rows, c, :] = block.reshape(
                batch, len(col_rows), self.element_size
            )
        try:
            decode_batch(self.codec, buf, (col, other_col))
        except DecodeError:
            return 0
        col_rows = self._col_rows[col]
        offsets = (stripes[:, None] * rows + col_rows[None, :]).ravel()
        values = buf[:, col_rows, col, :]
        self._disk_write_block(
            disk,
            offsets,
            np.ascontiguousarray(values.reshape(-1, self.element_size)),
        )
        return batch

    def inject_latent_error(self, disk: int, stripe: int, row: int) -> None:
        """Mark one element of ``disk`` unreadable (medium error).

        ``stripe``/``row`` address the element the way the mapper lays it
        out; the next read of that element raises until something rewrites
        or repairs it.
        """
        require(0 <= disk < len(self.disks), f"no disk {disk}")
        offset = stripe * self.layout.rows + row
        self.disks[disk].mark_bad(offset)

    def scrub_and_repair(self) -> ScrubReport:
        """Find latent sector errors volume-wide and rewrite them.

        Returns a :class:`ScrubReport` — a ``{stripe: [repaired cells]}``
        mapping carrying the scrub's read/write accounting.  Each stripe
        is loaded exactly once: the same buffer serves error detection,
        repair and the post-repair parity check.  Requires a healthy
        array (like :meth:`scrub`); raises
        :class:`InconsistentStripeError` if a stripe's parity still
        disagrees after repair (silent corruption — never auto-fixed
        because the bad cell cannot be located).
        """
        require(self.health is HealthState.HEALTHY,
                "cannot scrub with failed or rebuilding disks present")
        report = ScrubReport()
        for stripe in range(self.mapper.num_stripes):
            report.stripes_scanned += 1
            buf = self.codec.blank_stripe()
            bad: List[Cell] = []
            for col in range(self.layout.cols):
                for cell in self.layout.cells_in_column(col):
                    try:
                        buf[cell.row, cell.col] = self._read_cell(
                            stripe, cell
                        )
                        report.elements_read += 1
                    except _CELL_ERRORS:
                        bad.append(cell)
            if bad:
                self._decode_cells_checked(stripe, buf, bad)
                for cell in bad:
                    self._write_cell(stripe, cell, buf[cell.row, cell.col])
                    report.elements_written += 1
                report[stripe] = bad
            # the repaired buffer is byte-identical to what a re-read
            # would return, so verify parity against it directly
            if not self.codec.parity_ok(buf):
                raise InconsistentStripeError(
                    f"stripe {stripe} parity mismatch after repair"
                )
        return report

    def scrub(self) -> List[int]:
        """Verify parity of every stripe; returns inconsistent stripe ids.

        Requires a healthy array — parity cannot be checked through a
        failed disk or an unrebuilt region.
        """
        require(self.health is HealthState.HEALTHY,
                "cannot scrub with failed or rebuilding disks present")
        if not self.mapper.rotate and self._batch_io_ok():
            return self._scrub_batched()
        bad = []
        for stripe in range(self.mapper.num_stripes):
            buf = self._load_stripe(stripe, missing_cols=())
            if not self.codec.parity_ok(buf):
                bad.append(stripe)
        return bad

    #: Stripes per tensor chunk in the batched scrub sweep.
    _SCRUB_CHUNK = 16

    def _scrub_batched(self) -> List[int]:
        """Parity-verify the volume in tensor chunks.

        Loads each chunk with one gather per disk, re-encodes a copy with
        :func:`~repro.codec.batch.encode_batch` and flags stripes whose
        stored bytes differ — equivalent to the per-group parity check
        (parity is consistent in every group iff it equals the canonical
        re-encode).  Read counters match the per-stripe sweep.
        """
        rows, cols = self.layout.rows, self.layout.cols
        num_stripes = self.mapper.num_stripes
        bad: List[int] = []
        for chunk_start in range(0, num_stripes, self._SCRUB_CHUNK):
            chunk_end = min(chunk_start + self._SCRUB_CHUNK, num_stripes)
            batch = chunk_end - chunk_start
            stripes = np.arange(chunk_start, chunk_end, dtype=np.intp)
            buf = blank_batch(self.codec, batch)
            for c in range(cols):
                col_rows = self._col_rows[c]
                offsets = (
                    stripes[:, None] * rows + col_rows[None, :]
                ).ravel()
                buf[:, col_rows, c, :] = self.disks[c].read_block(
                    offsets
                ).reshape(batch, len(col_rows), self.element_size)
            enc = buf.copy()
            encode_batch(self.codec, enc)
            mismatch = (enc != buf).reshape(batch, -1).any(axis=1)
            bad.extend(
                int(stripes[i]) for i in np.nonzero(mismatch)[0]
            )
        return bad

    def resync_stripes(self, stripes: Iterable[int]) -> int:
        """Recompute parity of ``stripes`` from their data cells.

        The write-hole repair: after a crash tears a partial-stripe
        write, the data cells on disk are a valid (if torn) state but
        parity may not match.  Re-encoding from data restores internal
        consistency so the interrupted write can be replayed.  Requires a
        healthy array.  Returns the number of stripes resynced.
        """
        require(self.health is HealthState.HEALTHY,
                "cannot resync with failed or rebuilding disks present")
        count = 0
        for stripe in sorted(set(stripes)):
            require(0 <= stripe < self.mapper.num_stripes,
                    f"no stripe {stripe}")
            buf = self.codec.blank_stripe()
            for cell in self.layout.data_cells:
                buf[cell.row, cell.col] = self._read_cell(stripe, cell)
            self.codec.encode(buf)
            for cell in self.layout.parity_cells:
                self._write_cell(stripe, cell, buf[cell.row, cell.col])
            count += 1
        return count

    # -- reads ---------------------------------------------------------------

    def read(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` logical elements starting at ``start``.

        Transparently reconstructs elements on failed disks and in the
        unrebuilt region of an incremental rebuild.  Latent sector errors
        encountered on live disks are healed inline: the element is
        rebuilt from parity and the bad sector rewritten (policy
        ``heal_latent_on_read``).

        Fast paths (healthy array, no fault hooks):

        * a stripe-aligned full-stripe read of a row-major layout returns
          a **zero-copy read-only view** of the backing store — no bytes
          move at all (the view stays current until the range is
          rewritten; copy it to snapshot);
        * any other range is served as one vectorised gather per disk.

        Degraded or fault-injected stripes fall back to the per-stripe
        reconstruction walk, fanned out over the stripe pipeline when
        ``REPRO_WORKERS`` enables it.
        """
        require_positive(count, "count")
        if start < 0 or start + count > self.num_elements:
            raise AddressError(
                f"read [{start}, {start + count}) outside volume of "
                f"{self.num_elements} elements"
            )
        view = self._read_zero_copy(start, count)
        if view is not None:
            return view
        out = np.empty((count, self.element_size), dtype=np.uint8)
        per = self.layout.num_data_cells
        data_cells = self.layout.data_cells
        if self._fast_read_ok():
            suspects = self._bulk_read(start, count, out)
            # stripes whose gather failed checksum verification re-serve
            # through the self-healing per-stripe walk: the scalar read
            # re-detects the mismatch, reconstructs from parity, heals
            # the rotten block in place and re-records its digest
            for stripe in suspects:
                k0 = max(0, stripe * per - start)
                k1 = min(count, (stripe + 1) * per - start)
                self._serve_stripe_read(
                    stripe,
                    [(k, data_cells[(start + k) % per])
                     for k in range(k0, k1)],
                    out,
                )
            return out
        # group the range per stripe so reconstruction decodes once — a
        # contiguous logical range is a contiguous run of stripes, so the
        # split falls out of one divmod (the (stripe, cell) mapping is
        # rotation-independent; rotation only moves columns to disks)
        stripe_of, j = np.divmod(np.arange(start, start + count), per)
        firsts = np.flatnonzero(np.diff(stripe_of)) + 1
        bounds = [0, *firsts.tolist(), count]
        entries: List[Tuple[int, List[Tuple[int, Cell]]]] = []
        for i in range(len(bounds) - 1):
            k0, k1 = bounds[i], bounds[i + 1]
            entries.append((
                int(stripe_of[k0]),
                [(k, data_cells[j[k]]) for k in range(k0, k1)],
            ))
        if len(entries) >= self._DEGRADED_BATCH_MIN \
                and self._degraded_batch_ok():
            entries = self._serve_degraded_batched(entries, out)
        if len(entries) > 1 and self._parallel_ok():
            self.pipeline.map(
                lambda entry: self._serve_stripe_read(*entry, out), entries
            )
        else:
            for stripe, items in entries:
                self._serve_stripe_read(stripe, items, out)
        return out

    def _serve_stripe_read(
        self, stripe: int, items: List[Tuple[int, Cell]], out: np.ndarray
    ) -> None:
        """Serve one stripe's share of a read into ``out`` (see read())."""
        stale = self._stale_disks(stripe)
        lost_cols = {
            self.mapper.col_on_disk(stripe, f) for f in stale
        }
        needs_repair = any(
            cell.col in lost_cols for _, cell in items
        )
        if not needs_repair:
            try:
                for k, cell in items:
                    out[k] = self._read_cell(stripe, cell)
                return
            except _CELL_ERRORS + (DiskFailedError,):
                pass  # medium error: reconstruct the stripe below
        elif self._degraded_read_via_plan(stripe, items, out, stale):
            return
        buf, healed = self._load_stripe_report(
            stripe, missing_cols=tuple(sorted(lost_cols))
        )
        if healed:
            self._heal_cells(stripe, healed, buf)
        for k, cell in items:
            out[k] = buf[cell.row, cell.col]

    def _read_zero_copy(self, start: int, count: int) -> Optional[np.ndarray]:
        """Zero-copy view for a stripe-aligned read, or ``None``.

        Engages when the range is exactly one full stripe of data, the
        layout's logical order is the row-major matrix prefix (data rows
        above the parity rows, as in D-Code/X-Code), the mapper does not
        rotate and the fault surface is quiet.  The returned array is
        read-only and aliases the live backing store.
        """
        per = self.layout.num_data_cells
        if (
            count != per
            or start % per
            or self.mapper.rotate
            or not self._row_major_data
            or not self._fast_read_ok()
        ):
            return None
        stripe = start // per
        verifier = self._verifier()
        if verifier is not None and not verifier.range_verified(stripe):
            # zero-copy cannot verify without touching the bytes; stand
            # down to the gather path (which verifies and marks the
            # blocks) until the whole stripe is verification-current
            return None
        base = stripe * self.layout.rows * self.layout.cols
        view = self._flat_backing[base:base + per]
        view.flags.writeable = False
        for col, n in enumerate(self._full_stripe_col_counts):
            if n:
                self.disks[col].count_reads(int(n))
        return view

    def _bulk_read(self, start: int, count: int, out: np.ndarray) -> List[int]:
        """Healthy-array read as one vectorised gather per disk.

        Returns the (sorted) stripes holding blocks that failed checksum
        verification — empty without an attached verifier or when every
        block checks out.  Verification is edge-triggered: only blocks
        not yet verified since their last write pay a CRC; everything
        else is a bitmap lookup (docs/robustness.md).
        """
        rows, cols = self.layout.rows, self.layout.cols
        per = self.layout.num_data_cells
        logical = np.arange(start, start + count)
        stripes, j = np.divmod(logical, per)
        c = self._data_cols[j]
        disks = (c + stripes) % cols if self.mapper.rotate else c
        offsets = stripes * rows + self._data_rows[j]
        verifier = self._verifier()
        suspects: set = set()
        for d in range(cols):
            mask = disks == d
            if mask.any():
                offs = offsets[mask]
                block = self.disks[d].read_block(offs)
                out[mask] = block
                if verifier is not None:
                    bad = verifier.verify_rows(d, offs, block)
                    if bad.size:
                        idx = np.flatnonzero(mask)[bad]
                        suspects.update(int(s) for s in stripes[idx])
        return sorted(suspects)

    #: Minimum same-pattern stripes before the tensor degraded path engages
    #: (below it, per-stripe gathers cost more than they amortise).
    _DEGRADED_BATCH_MIN = 2
    #: Stripes per tensor chunk in the batched degraded read (cache-sized,
    #: like the batched scrub sweep).
    _DEGRADED_READ_CHUNK = 32

    def _degraded_batch_ok(self) -> bool:
        """Tensor degraded reads allowed: no rotation (layout column ==
        disk id, so one gather per disk serves a stripe run) and a quiet
        fault surface (hooks/latent sectors fall back to the self-healing
        per-stripe walk)."""
        return not self.mapper.rotate and self._batch_io_ok()

    def _serve_degraded_batched(
        self,
        entries: List[Tuple[int, List[Tuple[int, Cell]]]],
        out: np.ndarray,
    ) -> List[Tuple[int, List[Tuple[int, Cell]]]]:
        """Serve runs of same-pattern stripes as tensor gathers.

        The degraded-mode fast path (docs/performance.md): stripes are
        grouped by ``(stale disks, wanted cells)`` — every stripe of a
        group shares one :class:`~repro.iosim.engine.StripeReadPlan`, so
        the group's surviving source cells load as one
        :meth:`~repro.array.disk.SimDisk.read_block` gather per disk and
        the plan's XOR recipe executes once over the whole tensor through
        the compiled schedule plan.  Byte- and counter-identical to the
        per-stripe plan walk: both fetch exactly ``plan.fetch`` per
        stripe and run the same recipe.

        Returns the entries *not* served here (groups too small to
        amortise a tensor pass, or patterns needing algebraic decoding),
        which the caller routes through the per-stripe path.
        """
        # a stripe's share of a contiguous read is a contiguous run of
        # data cells, so (first logical index, length) identifies the
        # wanted-cell pattern without hashing cell tuples
        data_index = self.layout.data_index
        data_cells = self.layout.data_cells
        groups: Dict[
            Tuple[Tuple[int, ...], int, int],
            List[Tuple[int, List[Tuple[int, Cell]]]],
        ] = {}
        for stripe, items in entries:
            key = (
                self._stale_disks(stripe),
                data_index(items[0][1]),
                len(items),
            )
            groups.setdefault(key, []).append((stripe, items))
        remaining: List[Tuple[int, List[Tuple[int, Cell]]]] = []
        rows = self.layout.rows
        es = self.element_size
        for (stale, j0, nw), glist in groups.items():
            wanted = data_cells[j0:j0 + nw]
            if len(glist) < self._DEGRADED_BATCH_MIN:
                remaining.extend(glist)
                continue
            plan = self._read_planner(stale).plan_for(
                glist[0][0], list(wanted)
            )
            if plan.recipe is None:
                # algebraic (Gaussian) pattern — per-stripe reconstruction
                remaining.extend(glist)
                continue
            xplan = (
                self.codec.plans.schedule_plan(plan.recipe)
                if plan.recipe else None
            )
            fetch_rows: Dict[int, np.ndarray] = {}
            for cell in sorted(plan.fetch):
                fetch_rows.setdefault(cell.col, []).append(cell.row)  # type: ignore[arg-type]
            fetch_rows = {
                c: np.array(r, dtype=np.intp)
                for c, r in fetch_rows.items()
            }
            wrows = np.array([c.row for c in wanted], dtype=np.intp)
            wcols = np.array([c.col for c in wanted], dtype=np.intp)
            verifier = self._verifier()
            for i0 in range(0, len(glist), self._DEGRADED_READ_CHUNK):
                chunk = glist[i0:i0 + self._DEGRADED_READ_CHUNK]
                batch = len(chunk)
                stripes = np.array([s for s, _ in chunk], dtype=np.intp)
                buf = blank_batch(self.codec, batch)
                chunk_bad = False
                for c, rarr in fetch_rows.items():
                    offsets = (
                        stripes[:, None] * rows + rarr[None, :]
                    ).ravel()
                    block = self.disks[c].read_block(offsets)
                    buf[:, rarr, c, :] = block.reshape(
                        batch, len(rarr), es
                    )
                    if verifier is not None and \
                            verifier.verify_rows(c, offsets, block).size:
                        chunk_bad = True
                if chunk_bad:
                    # a source block failed verification: route the whole
                    # chunk through the per-stripe walk, which isolates
                    # the rotten cell, decodes around it and heals it
                    remaining.extend(chunk)
                    continue
                if xplan is not None:
                    xplan.execute_batch(
                        buf.reshape(batch, xplan.num_cells, es)
                    )
                ks = np.array(
                    [[k for k, _ in items] for _, items in chunk],
                    dtype=np.intp,
                )
                out[ks.ravel()] = buf[:, wrows, wcols, :].reshape(-1, es)
        return remaining

    def _degraded_read_via_plan(
        self, stripe, items, out, stale: Tuple[int, ...]
    ) -> bool:
        """Serve a degraded stripe read by executing the access engine's
        minimal read plan (the same plan the Figure-6/7 simulations
        price, so real disk counters match the model by construction).

        Returns ``False`` to fall back to full-stripe reconstruction —
        when the pattern needs algebraic decoding or a fetch trips over a
        latent sector error.
        """
        plan = self._read_planner(stale).plan_for(
            stripe, [c for _, c in items]
        )
        if plan.recipe is None:
            return False
        cache: Dict[Cell, np.ndarray] = {}
        try:
            for cell in sorted(plan.fetch):
                cache[cell] = self._read_cell(stripe, cell)
        except _CELL_ERRORS + (DiskFailedError,):
            return False
        for step in plan.recipe:
            acc = np.zeros(self.element_size, dtype=np.uint8)
            for read in step.reads:
                xor_into(acc, cache[read])
            cache[step.cell] = acc
        for k, cell in items:
            out[k] = cache[cell]
        return True

    def _read_planner(
        self, stale: Optional[Tuple[int, ...]] = None
    ) -> "_VolumeReadPlanner":
        state = self.failed_disks if stale is None else stale
        planner = self._planner_cache.get(state)
        if planner is None:
            planner = _VolumeReadPlanner(self, state)
            self._planner_cache[state] = planner
        return planner

    # -- write serialisation ---------------------------------------------------

    def _stripe_lock(self, stripe: int) -> "threading.RLock":
        """The write lock covering ``stripe`` (striped — see ``__init__``)."""
        return self._stripe_locks[stripe % len(self._stripe_locks)]

    @contextmanager
    def _locked_stripes(self, stripes: Iterable[int]):
        """Hold the write locks of every stripe in ``stripes``.

        Distinct lock indices are acquired in sorted order, so
        concurrent multi-stripe writers cannot deadlock against each
        other or against per-stripe writers (which hold at most one
        lock and never wait for a second).  Every multi-stripe write
        path (:meth:`_write_rest`, the tensor stores, the vectorised
        RMW) acquires its burst's locks here, on the coordinating
        thread, *before* fanning work out to the stripe pipeline: pool
        tasks themselves never touch these locks, so a lock holder
        waiting on the shared executor can never be starved by queued
        tasks blocked on the locks it holds.
        """
        locks = [
            self._stripe_locks[i]
            for i in sorted(
                {s % len(self._stripe_locks) for s in stripes}
            )
        ]
        for lock in locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(locks):
                lock.release()

    # -- writes ----------------------------------------------------------------

    def write(self, start: int, data: np.ndarray) -> None:
        """Write ``data`` (``(count, element_size)`` uint8) at ``start``.

        Fully covered stripes go through the batched codec as one encode
        tensor and one scatter per disk (when the fault surface is quiet);
        head/tail partial stripes take the per-stripe controller paths
        (RMW parity patch, reconstruct-write), fanned out over the stripe
        pipeline when ``REPRO_WORKERS`` enables it.
        """
        if data.ndim != 2 or data.shape[1] != self.element_size \
                or data.dtype != np.uint8:
            raise AddressError(
                f"data must be uint8 (count, {self.element_size}), got "
                f"{data.dtype} {data.shape}"
            )
        count = data.shape[0]
        if start < 0 or start + count > self.num_elements:
            raise AddressError(
                f"write [{start}, {start + count}) outside volume of "
                f"{self.num_elements} elements"
            )
        per = self.layout.num_data_cells
        full0 = -(-start // per)          # first fully covered stripe
        full1 = (start + count) // per    # one past the last full stripe
        if full1 - full0 >= 2 and self._batch_write_ok():
            # tensor fast path: the contiguous run of full stripes
            # encodes as one batch and stores as one scatter per disk
            k0 = full0 * per - start
            k1 = k0 + (full1 - full0) * per
            self._write_full_stripes_tensor(full0, full1, data[k0:k1])
            rest = self._group_by_stripe(start, data, range(0, k0))
            rest += self._group_by_stripe(start, data, range(k1, count))
            self._write_rest(rest)
            return
        by_stripe = self._group_by_stripe(start, data, range(count))
        # Full-stripe writes share one encode plan — run them through the
        # batched codec in a single pass; everything else (RMW patches,
        # reconstruct-writes) keeps the per-stripe controller paths.
        full: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]] = []
        rest: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]] = []
        for stripe, items in by_stripe:
            if len(items) == self.layout.num_data_cells:
                full.append((stripe, items))
            else:
                rest.append((stripe, items))
        if len(full) > 1:
            self._full_stripe_write_batched(full)
        else:
            rest = full + rest
        self._write_rest(rest)

    def _group_by_stripe(
        self, start: int, data: np.ndarray, ks: Iterable[int]
    ) -> List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]:
        """Group logical elements ``start + k`` for ``k`` in ``ks`` by stripe."""
        by_stripe: Dict[int, List[Tuple[Cell, np.ndarray]]] = {}
        for k in ks:
            loc = self.mapper.locate(start + k)
            by_stripe.setdefault(loc.stripe, []).append((loc.cell, data[k]))
        return list(by_stripe.items())

    def _write_rest(
        self, entries: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]
    ) -> None:
        """Run the non-tensor writes of one request queue.

        Three stacked fast paths (docs/performance.md, "Hot-path
        scaling"), each independently gated and falling back to the next:

        * **group commit** — a journaled burst of two or more stripes
          shares one coalesced intent append and one digest pass
          (:meth:`_open_group_intents`) instead of per-stripe journal
          round-trips;
        * **vectorised RMW** — an all-partial burst on a quiet healthy
          array executes as per-worker batched read/XOR/scatter passes
          (:meth:`_rmw_entries_batched`), byte- and counter-identical to
          the serial loop;
        * **thread fan-out** — otherwise per-stripe tasks run on the
          stripe pipeline when :meth:`_parallel_ok` allows.
        """
        if not entries:
            return
        # Acquire the whole burst's stripe locks up front (sorted, so
        # concurrent bursts cannot deadlock) and hand the pool workers
        # the lock-free leaf writers: a pool task that blocked on a
        # stripe lock could starve the shared executor while the lock
        # holder waits for that very pool — locks belong to
        # coordinating threads only.
        with self._locked_stripes(s for s, _ in entries):
            intents = self._open_group_intents(entries)
            # the vectorised path bypasses the per-stripe journal
            # chokepoint, so it requires the burst to be covered by a
            # group intent (or no journal at all)
            write = (
                self._write_stripe_unjournaled_locked
                if intents is not None
                else self._write_stripe_batch_locked
            )
            journal_ok = self.journal is None or intents is not None
            if not (
                len(entries) > 1
                and journal_ok
                and self._rmw_entries_batched(entries)
            ):
                if len(entries) > 1 and self._parallel_ok():
                    self.pipeline.map(
                        lambda entry: write(*entry), entries
                    )
                else:
                    for stripe, items in entries:
                        write(stripe, items)
            if intents is not None:
                self.journal.commit_group(intents)

    def _open_group_intents(
        self, entries: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]
    ) -> Optional[List["WriteIntent"]]:
        """Journal a burst of stripe writes as one group append.

        Returns the member intents (commit them with
        ``journal.commit_group`` once every write has landed), or ``None``
        when group commit does not apply — no journal, a single stripe, or
        per-stripe journaling forced via ``journal.group_commit = False``.
        Engages even while a crash-point phase hook is attached: the
        *writes* drop to the deterministic serial paths under a hook, but
        group framing must stay on so the chaos campaigns can tear bursts
        at group boundaries.
        """
        journal = self.journal
        if journal is None or len(entries) < 2 or not journal.group_commit:
            return None
        per = self.layout.num_data_cells
        partial = [
            (stripe, items) for stripe, items in entries
            if len(items) < per
        ]
        old_digest = self._group_old_digest(partial) if partial else None
        return journal.open_group(entries, old_digest=old_digest)

    def _group_old_digest(
        self, partial: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]
    ) -> Optional[int]:
        """One CRC-32 chain over the burst's pre-write parity footprints.

        The group-commit replacement for per-stripe
        :meth:`_parity_store_digest` calls: every partial member's
        footprint is gathered from the backing store in member order and
        digested in a single pass (CRC-32 over the concatenation equals
        the per-block chain recovery recomputes —
        :func:`repro.journal.recovery.parity_digest` with ``start=``).
        Controller metadata like the per-stripe digest: uncounted,
        fault-hook-free.  Returns ``None`` when any member's footprint
        column is stale — recovery then falls back to per-stripe
        classification, all a degraded burst can offer.
        """
        rows, cols = self.layout.rows, self.layout.cols
        # on a healthy, quiet array every stripe's stale set is empty —
        # skip the per-member scan (it would otherwise dominate the whole
        # group-commit cost on the hot path)
        quiet = not self.failed_disks and (
            self._rebuild is None or not self._rebuild.active
        )
        rotate = self.mapper.rotate
        offs: List[int] = []
        dsks: List[int] = []
        for stripe, items in partial:
            cells = self._parity_footprint(c for c, _ in items)
            if not quiet:
                stale = self._stale_cols(stripe)
                if stale and not set(stale).isdisjoint(
                    c.col for c in cells
                ):
                    return None
            shift = stripe % cols if rotate else 0
            base = stripe * rows
            for c in cells:
                offs.append(base + c.row)
                dsks.append((c.col + shift) % cols)
        block = self._backing[
            np.array(offs, dtype=np.intp), np.array(dsks, dtype=np.intp), :
        ]
        return zlib.crc32(np.ascontiguousarray(block))

    def _write_full_stripes_tensor(
        self, full0: int, full1: int, data: np.ndarray
    ) -> None:
        """Encode and store stripes ``[full0, full1)`` as one tensor pass.

        ``data`` is the contiguous ``(B * num_data_cells, element_size)``
        logical payload.  Only taken when :meth:`_batch_write_ok` holds.
        """
        batch = full1 - full0
        per = self.layout.num_data_cells
        buf = blank_batch(self.codec, batch)
        buf[:, self._data_rows, self._data_cols, :] = data.reshape(
            batch, per, self.element_size
        )
        encode_batch(self.codec, buf)
        with self._locked_stripes(range(full0, full1)):
            intents = self._open_full_stripe_intents(
                list(range(full0, full1)), buf
            )
            self._store_stripes_tensor(range(full0, full1), buf)
            self._commit_intents(intents)

    def _stale_cols(self, stripe: int) -> Tuple[int, ...]:
        """Layout columns of ``stripe`` that must not be trusted/written."""
        return tuple(
            sorted(
                self.mapper.col_on_disk(stripe, f)
                for f in self._stale_disks(stripe)
            )
        )

    def _full_stripe_write_batched(
        self, entries: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]
    ) -> None:
        """Encode every full-stripe write of one request queue together."""
        buf = blank_batch(self.codec, len(entries))
        for i, (_, items) in enumerate(entries):
            for cell, value in items:
                buf[i, cell.row, cell.col] = value
        encode_batch(self.codec, buf)
        with self._locked_stripes(s for s, _ in entries):
            intents = self._open_full_stripe_intents(
                [s for s, _ in entries], buf
            )
            if self._batch_write_ok():
                self._store_stripes_tensor([s for s, _ in entries], buf)
                self._commit_intents(intents)
                return
            for i, (stripe, _) in enumerate(entries):
                self._store_stripe(
                    stripe, buf[i], skip_cols=self._stale_cols(stripe)
                )
                if intents:
                    self.journal.commit(intents[i])

    def _open_full_stripe_intents(
        self, stripes: List[int], buf: np.ndarray
    ) -> List["WriteIntent"]:
        """Open one full-stripe intent per encoded stripe of ``buf``.

        Each intent holds its stripe's slice of the private encode buffer
        by reference (it outlives the intents and is never mutated after
        encode), so journaling the hot batched path costs only per-stripe
        bookkeeping — no per-cell payload materialization.
        """
        journal = self.journal
        if journal is None:
            return []
        data_cells = self.layout.data_cells
        return [
            journal.open_full(stripe, buf[i], data_cells)
            for i, stripe in enumerate(stripes)
        ]

    def _commit_intents(self, intents: List["WriteIntent"]) -> None:
        for intent in intents:
            self.journal.commit(intent)

    def _store_stripes_tensor(
        self, stripes: Iterable[int], buf: np.ndarray
    ) -> None:
        """Store encoded stripe tensor ``buf`` with one scatter per disk.

        Stripes are grouped by (stale columns, rotation shift) so each
        group shares disk targets; within a group, each disk receives all
        of its elements for all stripes in a single
        :meth:`~repro.array.disk.SimDisk.write_block`.  Caller guarantees
        :meth:`_batch_write_ok`.
        """
        rows, cols = self.layout.rows, self.layout.cols
        groups: Dict[Tuple[Tuple[int, ...], int],
                     List[Tuple[int, int]]] = {}
        for i, stripe in enumerate(stripes):
            shift = stripe % cols if self.mapper.rotate else 0
            key = (self._stale_cols(stripe), shift)
            groups.setdefault(key, []).append((i, stripe))
        for (skip_cols, shift), pairs in groups.items():
            skip = set(skip_cols)
            iarr = np.array([i for i, _ in pairs], dtype=np.intp)
            sarr = np.array([s for _, s in pairs], dtype=np.intp)
            for col in range(cols):
                if col in skip:
                    continue
                col_rows = self._col_rows[col]
                offsets = (
                    sarr[:, None] * rows + col_rows[None, :]
                ).ravel()
                values = buf[iarr[:, None], col_rows[None, :], col, :]
                self._disk_write_block(
                    (col + shift) % cols,
                    offsets,
                    np.ascontiguousarray(
                        values.reshape(-1, self.element_size)
                    ),
                )

    def _write_stripe_batch(
        self, stripe: int, items: List[Tuple[Cell, np.ndarray]]
    ) -> None:
        """Per-stripe write chokepoint, intent-logged when journaled.

        The intent carries the redo payload (and, for partial writes, a
        digest of the pre-write parity) so a crash anywhere between the
        two journal operations is recoverable to the fully-new image.
        """
        with self._stripe_lock(stripe):
            self._write_stripe_batch_locked(stripe, items)

    def _write_stripe_batch_locked(
        self, stripe: int, items: List[Tuple[Cell, np.ndarray]]
    ) -> None:
        """Lock-free body of :meth:`_write_stripe_batch` — the caller
        (a coordinating thread, never a pool worker) holds the stripe's
        write lock."""
        journal = self.journal
        if journal is None:
            self._write_stripe_unjournaled_locked(stripe, items)
            return
        old_digest = (
            None if len(items) == self.layout.num_data_cells
            else self._parity_store_digest(
                stripe, self._parity_footprint(c for c, _ in items)
            )
        )
        intent = journal.open(stripe, items, old_parity_digest=old_digest)
        self._write_stripe_unjournaled_locked(stripe, items)
        journal.commit(intent)

    def _parity_footprint(self, cells: Iterable[Cell]) -> Tuple[Cell, ...]:
        """Parity cells a write to ``cells`` may change, canonical order.

        The journal digest footprint: parities outside it are untouched
        by the write, so old and new images agree on them and chaining
        them into the digest adds CRC work without information.  Derived
        purely from the layout (cascading through the encode order, so a
        parity-of-parity flips too), hence recomputable at recovery time
        from an intent's dirty cells — no journal format change.
        """
        key = frozenset(c for c in cells if self.layout.is_data(c))
        footprint = self._footprint_cache.get(key)
        if footprint is None:
            flips = set(key)
            for group in self._encode_order:
                if any(m in flips for m in group.members):
                    flips.add(group.parity)
            footprint = tuple(
                c for c in self.layout.parity_cells if c in flips
            )
            self._footprint_cache[key] = footprint
        return footprint

    def _parity_store_digest(
        self, stripe: int, cells: Optional[Sequence[Cell]] = None
    ) -> Optional[int]:
        """CRC-32 chain over ``stripe``'s parity as it sits on disk.

        Controller metadata, not array I/O: reads the backing store
        directly (uncounted, fault-hook-free) so journaling partial
        writes does not distort the I/O ledger.  ``cells`` restricts the
        chain to a footprint subset (in canonical ``parity_cells``
        order — the write path passes :meth:`_parity_footprint` so an
        RMW intent digests only the parities it can change); ``None``
        digests every parity cell.  Chaining order matches
        :func:`repro.journal.recovery.parity_digest`.  Returns ``None``
        when any digested parity's column is stale — recovery then falls
        back to ``parity_ok`` alone, which is all a degraded stripe can
        offer.
        """
        if cells is None:
            prows, pcols = self._parity_rows, self._parity_cols
        else:
            prows = np.array([c.row for c in cells], dtype=np.intp)
            pcols = np.array([c.col for c in cells], dtype=np.intp)
        stale = self._stale_cols(stripe)
        if stale and not set(stale).isdisjoint(int(c) for c in pcols):
            return None
        cols = self.layout.cols
        shift = stripe % cols if self.mapper.rotate else 0
        offsets = stripe * self.layout.rows + prows
        disks = (pcols + shift) % cols
        # one gather + one CRC over the concatenation == the per-cell
        # chain (zlib.crc32 is a streaming checksum)
        block = self._backing[offsets, disks, :]
        return zlib.crc32(np.ascontiguousarray(block))

    def _write_stripe_unjournaled(
        self, stripe: int, items: List[Tuple[Cell, np.ndarray]]
    ) -> None:
        with self._stripe_lock(stripe):
            self._write_stripe_unjournaled_locked(stripe, items)

    def _write_stripe_unjournaled_locked(
        self, stripe: int, items: List[Tuple[Cell, np.ndarray]]
    ) -> None:
        failed_cols = self._stale_cols(stripe)
        if len(items) == self.layout.num_data_cells:
            self._full_stripe_write(stripe, items, failed_cols)
        elif failed_cols:
            self._reconstruct_write(stripe, items, failed_cols)
        else:
            try:
                self._rmw_write(stripe, items)
            except _CELL_ERRORS + (DiskFailedError,):
                # RMW tripped over a medium error (or a disk died under
                # it) while fetching old values: reconstruct the stripe
                # (the loader decodes the unreadable cells), apply the
                # batch, re-encode.  Any cells the aborted RMW already
                # wrote simply get rewritten; stale columns are
                # recomputed because the failure state may have changed.
                self._reconstruct_write(
                    stripe, items, self._stale_cols(stripe)
                )

    def _full_stripe_write(self, stripe, items, failed_cols) -> None:
        buf = self.codec.blank_stripe()
        for cell, value in items:
            buf[cell.row, cell.col] = value
        self.codec.encode(buf)
        self._store_stripe(stripe, buf, skip_cols=failed_cols)

    def _reconstruct_write(self, stripe, items, failed_cols) -> None:
        buf = self._load_stripe(stripe, missing_cols=failed_cols)
        for cell, value in items:
            buf[cell.row, cell.col] = value
        self.codec.encode(buf)
        self._store_stripe(stripe, buf, skip_cols=failed_cols)

    def _rmw_write(self, stripe, items) -> None:
        """Healthy-array partial write: patch parity with XOR deltas.

        Every old value the RMW needs — the dirty data cells and the
        parities their deltas patch (cascades included) — is read before
        the first write lands.  A medium error discovered mid-read
        therefore aborts with the stripe untouched, so the
        reconstruct-write fallback in :meth:`_write_stripe_unjournaled`
        always loads a parity-consistent image.
        """
        journal = self.journal
        deltas: Dict[Cell, np.ndarray] = {}
        data_new: List[Tuple[Cell, np.ndarray]] = []
        for cell, value in items:
            old = self._read_cell(stripe, cell)
            delta = np.bitwise_xor(old, value)
            if delta.any():
                deltas[cell] = delta
                data_new.append((cell, value))
        if not deltas:
            return
        parity_new: List[Tuple[Cell, np.ndarray]] = []
        for group in self._encode_order:
            gdelta: Optional[np.ndarray] = None
            for member in group.members:
                d = deltas.get(member)
                if d is None:
                    continue
                if gdelta is None:
                    gdelta = d.copy()
                else:
                    xor_into(gdelta, d)
            if gdelta is not None and gdelta.any():
                old = self._read_cell(stripe, group.parity)
                xor_into(old, gdelta)
                parity_new.append((group.parity, old))
                deltas[group.parity] = gdelta
        wrote = False
        for cell, value in data_new + parity_new:
            if wrote and journal is not None:
                journal.checkpoint("inter_column", stripe)
            self._write_cell(stripe, cell, value)
            wrote = True

    # -- vectorised multi-stripe RMW (docs/performance.md) -------------------

    def _rmw_plan(
        self, cells: Tuple[Cell, ...]
    ) -> List[Tuple[Cell, Tuple[Cell, ...]]]:
        """Structural parity steps of an RMW over ``cells``.

        ``(parity, members)`` pairs in encode order, where ``members``
        are the dirty (or cascaded-parity) cells feeding that parity's
        delta — the cell-pattern-invariant skeleton of
        :meth:`_rmw_write`'s group walk, cached per pattern so a batched
        burst pays the toposort scan once.  Structurally a superset of
        the serial walk: stripes whose member deltas happen to cancel
        contribute an all-zero row and are masked out numerically.
        """
        key = tuple(cells)
        plan = self._rmw_plan_cache.get(key)
        if plan is None:
            flips = set(key)
            plan = []
            for group in self._encode_order:
                members = tuple(m for m in group.members if m in flips)
                if members:
                    plan.append((group.parity, members))
                    flips.add(group.parity)
            self._rmw_plan_cache[key] = plan
        return plan

    def _rmw_entries_batched(
        self, entries: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]
    ) -> bool:
        """Try the vectorised multi-stripe RMW; ``False`` means fall back.

        Engages only for an all-partial burst on a quiet, healthy,
        unrotated array with a parallel pipeline: the same data/parity
        elements are read and written as the serial per-stripe loop (and
        the counters match exactly), but as one batched gather/scatter
        pass per worker chunk instead of thousands of per-element calls.
        With ``REPRO_PROCESS_POOL`` the chunks run in forked workers over
        the shared-memory backing (GIL-free even for pure-numpy builds);
        otherwise they fan out over the thread pool, whose workers spend
        their time in GIL-released numpy/C-kernel calls.
        """
        per = self.layout.num_data_cells
        if (
            not self.pipeline.parallel
            or self.mapper.rotate
            or self._vulnerable_disks()
            or not self._batch_write_ok()
            or not self._batch_io_ok()
            or any(len(items) >= per for _, items in entries)
        ):
            return False
        # hold the burst's stripe locks for the whole pass: the chunk
        # workers (threads or forked processes) do not lock per stripe,
        # so a concurrent per-stripe writer must wait here instead of
        # interleaving with the vectorised read-XOR-scatter
        with self._locked_stripes(s for s, _ in entries):
            if self.pipeline.process_pool \
                    and self._rmw_entries_process(entries):
                return True
            # threads beyond physical cores cannot overlap even
            # GIL-released work; on a single-core host this collapses to
            # one full-width vectorised pass — still far faster than the
            # per-element loop
            workers = min(self.pipeline.workers, os.cpu_count() or 1)
            chunks = _split_chunks(entries, workers)
            if len(chunks) > 1:
                self.pipeline.map(self._rmw_chunk, chunks)
            else:
                self._rmw_chunk(entries)
        return True

    def _rmw_chunk(
        self, entries: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]
    ) -> None:
        """Vectorised RMW over one worker's chunk of a burst.

        Stripes sharing a dirty-cell pattern batch together: per data
        cell one gather of the old values across all stripes, one XOR
        for the deltas, one scatter of the rows that actually changed;
        then the cached :meth:`_rmw_plan` parity steps run the same way
        with per-stripe masks.  Byte- and counter-identical to running
        :meth:`_rmw_write` per stripe.
        """
        rows = self.layout.rows
        groups: Dict[
            Tuple[Cell, ...], List[Tuple[int, List[np.ndarray]]]
        ] = {}
        for stripe, items in entries:
            key = tuple(c for c, _ in items)
            groups.setdefault(key, []).append(
                (stripe, [v for _, v in items])
            )
        for cells, members in groups.items():
            stripes = np.array([s for s, _ in members], dtype=np.intp)
            values = np.asarray([vs for _, vs in members])  # (n, m, es)
            deltas: Dict[Cell, np.ndarray] = {}
            for j, cell in enumerate(cells):
                offs = stripes * rows + cell.row
                old = self.disks[cell.col].read_block(offs)
                delta = np.bitwise_xor(old, values[:, j])
                mask = delta.any(axis=1)
                if mask.any():
                    self._disk_write_block(
                        cell.col, offs[mask],
                        np.ascontiguousarray(values[mask, j]),
                    )
                deltas[cell] = delta
            for parity, srcs in self._rmw_plan(cells):
                gdelta = deltas[srcs[0]].copy()
                for m in srcs[1:]:
                    np.bitwise_xor(gdelta, deltas[m], out=gdelta)
                gmask = gdelta.any(axis=1)
                if gmask.any():
                    offs = stripes[gmask] * rows + parity.row
                    old = self.disks[parity.col].read_block(offs)
                    np.bitwise_xor(old, gdelta[gmask], out=old)
                    self._disk_write_block(parity.col, offs, old)
                deltas[parity] = gdelta

    def _rmw_entries_process(
        self, entries: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]]
    ) -> bool:
        """Dispatch a burst's RMW chunks to forked worker processes.

        Workers attach to the shared-memory backing by name and run the
        same vectorised algorithm as :meth:`_rmw_chunk` directly against
        the tensor, returning per-column I/O counter deltas the parent
        replays onto the disks — so results *and* counters match the
        serial path.  Returns ``False`` (caller falls back to threads)
        when the backing is not in shared memory, the write funnel is
        wrapped per-instance (integrity tooling), the burst is too small
        to split, or the platform cannot fork.
        """
        if self._shm_name is None or self.pipeline.workers < 2:
            return False
        if "_disk_write_block" in self.__dict__ \
                or "_write_cell" in self.__dict__:
            # IntegrityChecker-style wrappers observe writes through
            # instance attributes, which a forked child would bypass
            return False
        # like the thread path, cap the fan-out at the core count:
        # forked workers beyond physical cores pay fork/pickle/IPC for
        # no added parallelism, and on a single core the in-process
        # vectorised chunks (the caller's fallback) are strictly faster
        workers = min(
            self.pipeline.workers, len(entries), os.cpu_count() or 1
        )
        if workers < 2:
            return False
        chunks = _split_chunks(entries, workers)
        geom = (
            self._shm_name, self._backing.shape,
            self.layout.name, self.layout.p, self.element_size,
        )
        payloads = [
            geom + (
                [
                    (
                        stripe,
                        [
                            ((c.row, c.col), v.tobytes())
                            for c, v in items
                        ],
                    )
                    for stripe, items in chunk
                ],
            )
            for chunk in chunks
        ]
        try:
            results = self.pipeline.map_process(
                _process_rmw_chunk, payloads
            )
        except (RuntimeError, OSError):
            return False
        for counts in results:
            for col, (reads, writes) in counts.items():
                self.disks[col].count_reads(reads)
                self.disks[col].count_writes(writes)
        return True

    # -- self-healing disk I/O ----------------------------------------------

    def _stale_disks(self, stripe: int) -> Tuple[int, ...]:
        """Disks that cannot serve ``stripe``: failed ones, plus the
        rebuild target for stripes the cursor has not reached."""
        out = [d.disk_id for d in self.disks if d.failed]
        rebuild = self._rebuild
        if (
            rebuild is not None
            and rebuild.active
            and not rebuild.covers(stripe)
            and rebuild.disk not in out
        ):
            out.append(rebuild.disk)
        return tuple(sorted(out))

    def _disk_write_block(
        self, disk_id: int, offsets: np.ndarray, data: np.ndarray
    ) -> None:
        """Funnel for every batched (tensor-path) disk scatter.

        All `write_block` stores issued by the volume go through here so
        integrity tooling can observe them the way it wraps
        :meth:`_write_cell` — see
        :class:`repro.array.integrity.IntegrityChecker`.
        """
        self.disks[disk_id].write_block(offsets, data)

    def _verifier(self):
        """The attached integrity checker when verified reads are on."""
        ic = self.integrity
        return ic if ic is not None and ic.verify_reads else None

    def _disk_read(self, disk_id: int, offset: int) -> np.ndarray:
        """One element read under the retry/escalation policy.

        With verified reads on, every element served here is checked
        against its out-of-band CRC; a mismatch counts toward the disk's
        escalation budget and raises :class:`ChecksumMismatchError`, which
        the stripe-level handlers treat as a located erasure (reconstruct
        from parity, rewrite, re-record).
        """
        disk = self.disks[disk_id]
        attempts = self.policy.max_retries + 1
        for attempt in range(attempts):
            try:
                value = disk.read(offset)
            except TransientIOError:
                self._note_error(disk_id, "transient")
                if attempt == attempts - 1:
                    raise
                with self._policy_lock:
                    self.error_counters.backoff_ms += (
                        self.policy.backoff_ms * (2 ** attempt)
                    )
            except LatentSectorError:
                self._note_error(disk_id, "latent")
                raise
            else:
                verifier = self._verifier()
                if verifier is not None and \
                        not verifier.check_block(disk_id, offset, value):
                    with self._policy_lock:
                        self.heal_log.append(
                            HealEvent("corrupt", disk_id, offset=offset)
                        )
                    self._note_error(disk_id, "checksum")
                    raise ChecksumMismatchError(disk_id, offset)
                if attempt:
                    with self._policy_lock:
                        self.heal_log.append(
                            HealEvent("retry_ok", disk_id, offset=offset,
                                      detail=f"read after {attempt} retries")
                        )
                return value
        raise AssertionError("unreachable")  # pragma: no cover

    def _disk_write(self, disk_id: int, offset: int,
                    value: np.ndarray) -> None:
        """One element write under the retry policy.

        A write racing a disk death is dropped (and logged): the disk is
        gone, the data stays recoverable from the surviving columns —
        exactly what a controller does when a spindle dies mid-flush.
        """
        disk = self.disks[disk_id]
        attempts = self.policy.max_retries + 1
        for attempt in range(attempts):
            try:
                disk.write(offset, value)
            except TransientIOError:
                self._note_error(disk_id, "transient")
                if attempt == attempts - 1:
                    raise
                with self._policy_lock:
                    self.error_counters.backoff_ms += (
                        self.policy.backoff_ms * (2 ** attempt)
                    )
            except DiskFailedError:
                with self._policy_lock:
                    self.heal_log.append(
                        HealEvent("dropped_write", disk_id, offset=offset)
                    )
                return
            else:
                if attempt:
                    with self._policy_lock:
                        self.heal_log.append(
                            HealEvent("retry_ok", disk_id, offset=offset,
                                      detail=f"write after {attempt} retries")
                        )
                return

    def _note_error(self, disk_id: int, kind: str) -> None:
        """Count an error; escalate a flaky disk to FAILED past threshold.

        Serialised by ``_policy_lock`` so pipeline worker threads never
        race the shared counters, heal log, or escalation decision.
        """
        with self._policy_lock:
            counters = self.error_counters
            counters.note(disk_id, kind)
            if (
                counters.total(disk_id) >= self.policy.escalate_after
                and disk_id not in counters.escalated
                and not self.disks[disk_id].failed
                and len(set(self._vulnerable_disks()) - {disk_id}) < 2
            ):
                counters.escalated.append(disk_id)
                self.heal_log.append(
                    HealEvent("escalate", disk_id,
                              detail=f"{counters.total(disk_id)} errors")
                )
                self.fail_disk(disk_id)

    def _heal_cells(
        self, stripe: int, cells: Sequence[Cell], buf: np.ndarray
    ) -> None:
        """Rewrite reconstructed cells over their (bad) sectors.

        Writing remaps the sector on the simulated disk exactly like a
        real drive's reallocation, so the next read succeeds without
        reconstruction.  The rewrite goes through :meth:`_write_cell` —
        the funnel integrity tooling wraps — so a heal re-records the
        block's checksum instead of leaving a stale digest behind.
        """
        if not self.policy.heal_latent_on_read:
            return
        for cell in cells:
            loc = self.mapper.locate_cell(stripe, cell)
            if self.disks[loc.disk].failed:
                continue
            try:
                self._write_cell(stripe, cell, buf[cell.row, cell.col])
            except TransientIOError:
                continue  # best-effort: the scrubber will catch it later
            self.heal_log.append(
                HealEvent("remap", loc.disk, stripe=stripe,
                          offset=loc.offset)
            )

    # -- stripe buffer I/O ---------------------------------------------------------

    def _read_cell(self, stripe: int, cell: Cell) -> np.ndarray:
        loc = self.mapper.locate_cell(stripe, cell)
        return self._disk_read(loc.disk, loc.offset)

    def _write_cell(self, stripe: int, cell: Cell, value: np.ndarray) -> None:
        loc = self.mapper.locate_cell(stripe, cell)
        self._disk_write(loc.disk, loc.offset, value)

    def _load_stripe(
        self, stripe: int, missing_cols: Sequence[int]
    ) -> np.ndarray:
        """Read a stripe into memory, reconstructing everything unreadable.

        Losses come from two sources: whole columns on failed disks
        (``missing_cols``) and individual latent sector errors discovered
        while reading.  Both are decoded together at cell granularity, so
        e.g. one failed disk plus a medium error elsewhere still recovers.
        """
        return self._load_stripe_report(stripe, missing_cols)[0]

    def _load_stripe_report(
        self, stripe: int, missing_cols: Sequence[int]
    ) -> Tuple[np.ndarray, List[Cell]]:
        """Like :meth:`_load_stripe`, also reporting the cells that were
        reconstructed *beyond* ``missing_cols`` — the latent/transient
        casualties the read path may want to heal in place."""
        buf = self.codec.blank_stripe()
        missing = set(missing_cols)
        lost: List[Cell] = []
        extra: List[Cell] = []
        for col in range(self.layout.cols):
            if col in missing:
                lost.extend(self.layout.cells_in_column(col))
                continue
            for cell in self.layout.cells_in_column(col):
                try:
                    buf[cell.row, cell.col] = self._read_cell(stripe, cell)
                except _CELL_ERRORS:
                    lost.append(cell)
                    extra.append(cell)
                except DiskFailedError:
                    # the disk died underneath us (injected mid-read):
                    # treat the whole cell as lost, same as a failed col
                    lost.append(cell)
        if lost:
            self._decode_cells_checked(stripe, buf, lost)
        return buf, extra

    def _decode_cells_checked(
        self, stripe: int, buf: np.ndarray, lost: List[Cell]
    ) -> None:
        """Decode ``lost`` cells of ``stripe``; failures become typed
        :class:`UnrecoverableStripeError` naming the stripe instead of
        raw decoder exceptions."""
        try:
            self._decode_cells(buf, lost)
        except DecodeError as exc:
            unrecovered = exc.unrecovered or tuple(lost)
            raise UnrecoverableStripeError(
                stripe, cells=unrecovered, reason=str(exc)
            ) from exc

    def _decode_cells(self, buf: np.ndarray, lost: List[Cell]) -> None:
        """Chain-decode when possible, Gaussian otherwise."""
        if self.layout.chain_decodable:
            try:
                self._chain.decode_cells(buf, lost)
                return
            except DecodeError:
                pass  # odd loss pattern — let the oracle try
        self._gauss.decode_cells(buf, lost)

    def _store_stripe(
        self, stripe: int, buf: np.ndarray, skip_cols: Sequence[int] = ()
    ) -> None:
        skip = set(skip_cols)
        journal = self.journal
        wrote = False
        for col in range(self.layout.cols):
            if col in skip:
                continue
            if wrote and journal is not None:
                journal.checkpoint("inter_column", stripe)
            for cell in self.layout.cells_in_column(col):
                self._write_cell(stripe, cell, buf[cell.row, cell.col])
            wrote = True

    def __repr__(self) -> str:
        return (
            f"<RAID6Volume {self.layout.name} p={self.layout.p} "
            f"{len(self.disks)} disks x {self.mapper.disk_capacity} "
            f"elements, health={self.health.value} "
            f"failed={list(self.failed_disks)}>"
        )


class _VolumeReadPlanner:
    """Bridges the volume to the access engine's degraded read planning.

    Built lazily per failure state (failed disks plus the stale rebuild
    target); delegates to
    :meth:`repro.iosim.engine.AccessEngine._plan_stripe_read` with the
    volume's exact geometry (stripes, rotation, failed disks).
    """

    def __init__(self, volume: "RAID6Volume", failed: Tuple[int, ...]):
        from repro.iosim.engine import AccessEngine

        self.failed = failed
        self._engine = AccessEngine(
            volume.layout,
            num_stripes=volume.mapper.num_stripes,
            rotate=volume.mapper.rotate,
            failed_disks=failed,
        )

    def plan_for(self, stripe: int, wanted):
        return self._engine._plan_stripe_read(stripe, wanted)


# -- module helpers for shared-memory / process-pool RMW ---------------------


def _release_shm(shm) -> None:
    """Close and unlink a volume's shared-memory backing (finalizer)."""
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass


def _split_chunks(items: List, parts: int) -> List[List]:
    """Split ``items`` into at most ``parts`` contiguous non-empty runs."""
    parts = max(1, min(parts, len(items)))
    size = -(-len(items) // parts)
    return [items[i:i + size] for i in range(0, len(items), size)]


#: Per-process attachment cache of the RMW worker: forked children keep
#: their shared-memory handle, layout, encode order and pattern plans
#: alive across :func:`_process_rmw_chunk` calls.
_PROC_RMW_CACHE: Dict[Tuple, Tuple] = {}


def _attach_rmw_context(shm_name, shape, code, p, element_size):
    key = (shm_name, shape, code, p, element_size)
    ctx = _PROC_RMW_CACHE.get(key)
    if ctx is None:
        from multiprocessing import resource_tracker, shared_memory

        from repro.codes import make_code

        # the segment belongs to the parent volume (whose finalizer
        # unlinks it); attaching must not re-register it with the shared
        # resource tracker, or the tracker double-frees at shutdown
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=shm_name)
        finally:
            resource_tracker.register = orig_register
        backing = np.ndarray(shape, dtype=np.uint8, buffer=shm.buf)
        layout = make_code(code, p)
        order = _toposort_groups(layout)
        ctx = (shm, backing, layout, order, {})
        _PROC_RMW_CACHE[key] = ctx
    return ctx


def _process_rmw_chunk(payload):
    """Forked-worker body of the process-pool RMW path.

    ``payload`` is ``(shm_name, shape, code, p, element_size, entries)``
    with entries as ``(stripe, [((row, col), value_bytes), ...])`` — small
    and picklable; the stripe data itself lives in the shared backing.
    Runs the exact :meth:`RAID6Volume._rmw_chunk` algorithm against the
    shared tensor and returns ``{col: (reads, writes)}`` counter deltas
    for the parent to replay.
    """
    shm_name, shape, code, p, element_size, raw_entries = payload
    _, backing, layout, order, plans = _attach_rmw_context(
        shm_name, shape, code, p, element_size
    )
    rows = layout.rows
    counts: Dict[int, List[int]] = {}

    def account(col: int, reads: int, writes: int) -> None:
        c = counts.setdefault(col, [0, 0])
        c[0] += reads
        c[1] += writes

    groups: Dict[Tuple[Cell, ...], List[Tuple[int, List[bytes]]]] = {}
    for stripe, items in raw_entries:
        key = tuple(Cell(r, c) for (r, c), _ in items)
        groups.setdefault(key, []).append(
            (stripe, [blob for _, blob in items])
        )
    for cells, members in groups.items():
        plan = plans.get(cells)
        if plan is None:
            flips = set(cells)
            plan = []
            for group in order:
                srcs = tuple(m for m in group.members if m in flips)
                if srcs:
                    plan.append((group.parity, srcs))
                    flips.add(group.parity)
            plans[cells] = plan
        stripes = np.array([s for s, _ in members], dtype=np.intp)
        values = np.frombuffer(
            b"".join(blob for _, blobs in members for blob in blobs),
            dtype=np.uint8,
        ).reshape(len(members), len(cells), element_size)
        deltas: Dict[Cell, np.ndarray] = {}
        for j, cell in enumerate(cells):
            offs = stripes * rows + cell.row
            old = backing[offs, cell.col, :]
            account(cell.col, int(offs.size), 0)
            delta = np.bitwise_xor(old, values[:, j])
            mask = delta.any(axis=1)
            if mask.any():
                backing[offs[mask], cell.col, :] = values[mask, j]
                account(cell.col, 0, int(mask.sum()))
            deltas[cell] = delta
        for parity, srcs in plan:
            gdelta = deltas[srcs[0]].copy()
            for m in srcs[1:]:
                np.bitwise_xor(gdelta, deltas[m], out=gdelta)
            gmask = gdelta.any(axis=1)
            if gmask.any():
                offs = stripes[gmask] * rows + parity.row
                old = backing[offs, parity.col, :]
                np.bitwise_xor(old, gdelta[gmask], out=old)
                backing[offs, parity.col, :] = old
                account(
                    parity.col, int(gmask.sum()), int(gmask.sum())
                )
            deltas[parity] = gdelta
    return {col: (c[0], c[1]) for col, c in counts.items()}
