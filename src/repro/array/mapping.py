"""Logical-address translation for striped volumes.

A volume of ``num_stripes`` stripes exposes
``num_stripes * layout.num_data_cells`` logical elements.  Logical element
``k`` lives in stripe ``k // per_stripe`` at the layout's data cell
``k % per_stripe`` (the paper's row-major "continuous" order).  A cell of
stripe ``s`` maps to physical ``(disk, offset)`` with
``offset = s * layout.rows + cell.row`` and ``disk = cell.col``, optionally
rotated by one column per stripe (RAID-5-style global balancing, kept for
the rotation ablation — the paper's §I argues it cannot balance accesses
within a stripe).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.codes.base import Cell, CodeLayout
from repro.exceptions import AddressError
from repro.util.validation import require_positive


@dataclass(frozen=True)
class Location:
    """Physical placement of one stripe cell."""

    stripe: int
    cell: Cell
    disk: int
    offset: int


class AddressMapper:
    """Bijective logical ↔ physical translation for one volume."""

    def __init__(
        self,
        layout: CodeLayout,
        num_stripes: int,
        rotate: bool = False,
    ) -> None:
        require_positive(num_stripes, "num_stripes")
        self.layout = layout
        self.num_stripes = num_stripes
        self.rotate = rotate

    @property
    def num_elements(self) -> int:
        """Addressable logical data elements."""
        return self.num_stripes * self.layout.num_data_cells

    @property
    def disk_capacity(self) -> int:
        """Elements each disk must hold."""
        return self.num_stripes * self.layout.rows

    # -- logical -> physical ---------------------------------------------------

    def locate(self, logical: int) -> Location:
        """Placement of logical data element ``logical``."""
        if not 0 <= logical < self.num_elements:
            raise AddressError(
                f"logical element {logical} outside volume of "
                f"{self.num_elements} elements"
            )
        per = self.layout.num_data_cells
        stripe = logical // per
        cell = self.layout.data_cell(logical % per)
        return self.locate_cell(stripe, cell)

    def locate_cell(self, stripe: int, cell: Cell) -> Location:
        """Placement of any cell (data or parity) of a stripe."""
        if not 0 <= stripe < self.num_stripes:
            raise AddressError(
                f"stripe {stripe} outside volume of {self.num_stripes}"
            )
        disk = self.disk_of(stripe, cell.col)
        offset = stripe * self.layout.rows + cell.row
        return Location(stripe=stripe, cell=cell, disk=disk, offset=offset)

    def disk_of(self, stripe: int, col: int) -> int:
        """Physical disk holding layout column ``col`` of ``stripe``."""
        if self.rotate:
            return (col + stripe) % self.layout.cols
        return col

    def col_on_disk(self, stripe: int, disk: int) -> int:
        """Inverse of :meth:`disk_of`: which column ``disk`` holds."""
        if self.rotate:
            return (disk - stripe) % self.layout.cols
        return disk

    # -- physical -> logical ---------------------------------------------------

    def logical_of(self, stripe: int, cell: Cell) -> int:
        """Logical index of a data cell (raises for parity cells)."""
        return stripe * self.layout.num_data_cells + self.layout.data_index(cell)
