"""Write-back stripe cache.

Array controllers coalesce small writes in NVRAM and destage whole
batches, because the parity RMW cost of a partial write is dominated by
*distinct parity groups touched* — exactly the quantity the paper's
Figure 5 studies.  This cache buffers logical writes per stripe and
destages each stripe's accumulated cells in one batch, turning several
small RMWs into one (or, when a stripe fills completely, into a
read-free full-stripe write).

Reads are read-through with dirty-cell overlay, so a reader always sees
its own writes.  Eviction is LRU by stripe when the dirty-stripe budget is
exceeded; ``flush()`` destages everything.

The cache is thread-safe: an internal lock serialises the dirty-set
bookkeeping and destaging, so concurrent writers (or a flush racing a
writer — the serving coalescer's steady state) cannot lose buffered
cells or destage a stripe twice.  Stripe-level write ordering against
*other* writers of the same volume is the volume's job — its striped
per-stripe write locks serialise a destage against a foreground RMW on
the same stripe (see ``RAID6Volume._stripe_lock``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Tuple

import numpy as np

from repro.array.volume import RAID6Volume
from repro.codes.base import Cell
from repro.exceptions import AddressError
from repro.util.validation import require_positive


class StripeCache:
    """LRU write-back cache in front of a :class:`RAID6Volume`."""

    def __init__(
        self,
        volume: RAID6Volume,
        max_dirty_stripes: int = 8,
        evict_batch: int = 1,
    ) -> None:
        require_positive(max_dirty_stripes, "max_dirty_stripes")
        require_positive(evict_batch, "evict_batch")
        self.volume = volume
        self.max_dirty_stripes = max_dirty_stripes
        #: Eviction hysteresis: on overflow, destage down to
        #: ``max_dirty_stripes - evict_batch + 1`` dirty stripes in one
        #: coalesced batch instead of trickling single LRU victims.
        #: The default (1) keeps the historical evict-exactly-overflow
        #: behaviour; serving shards raise it so pressure destages ride
        #: the batched multi-stripe paths.
        self.evict_batch = evict_batch
        #: stripe -> {cell: value}; OrderedDict gives LRU order
        self._dirty: "OrderedDict[int, Dict[Cell, np.ndarray]]" = OrderedDict()
        self.destage_count = 0
        self._lock = threading.RLock()

    # -- write path -----------------------------------------------------------

    def write(self, start: int, data: np.ndarray) -> None:
        """Buffer a logical write; destages only on pressure or flush."""
        if data.ndim != 2 or data.shape[1] != self.volume.element_size \
                or data.dtype != np.uint8:
            raise AddressError(
                f"data must be uint8 (count, {self.volume.element_size})"
            )
        if start < 0 or start + data.shape[0] > self.volume.num_elements:
            raise AddressError("write outside volume")
        with self._lock:
            for k in range(data.shape[0]):
                loc = self.volume.mapper.locate(start + k)
                bucket = self._dirty.get(loc.stripe)
                if bucket is None:
                    bucket = {}
                    self._dirty[loc.stripe] = bucket
                bucket[loc.cell] = data[k].copy()
                self._dirty.move_to_end(loc.stripe)
            overflow = len(self._dirty) - self.max_dirty_stripes
            if overflow > 0:
                # evict the LRU overflow (plus hysteresis headroom) as
                # one coalesced destage batch
                victims = list(self._dirty)[
                    :overflow + self.evict_batch - 1
                ]
                self._destage_many(victims)

    # -- read path ------------------------------------------------------------

    def read(self, start: int, count: int) -> np.ndarray:
        """Read-through with dirty overlay (read-your-writes)."""
        out = self.volume.read(start, count)
        copied = out.flags.writeable  # volume may hand out a zero-copy view
        with self._lock:
            for k in range(count):
                loc = self.volume.mapper.locate(start + k)
                bucket = self._dirty.get(loc.stripe)
                if bucket is not None and loc.cell in bucket:
                    if not copied:
                        out = out.copy()
                        copied = True
                    out[k] = bucket[loc.cell]
        return out

    # -- destaging --------------------------------------------------------------

    @property
    def dirty_stripes(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(self._dirty)

    def dirty_elements(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._dirty.values())

    def dirty_snapshot(self) -> "Dict[int, List[Tuple[Cell, np.ndarray]]]":
        """Point-in-time copy of the dirty map: stripe → sorted items.

        Cell payloads are copied, so the snapshot stays valid while the
        cache keeps mutating — the durable-ack shard state ledger
        journals it as the redo image of everything acknowledged but not
        yet destaged (:mod:`repro.serve.state`).
        """
        with self._lock:
            return {
                stripe: [
                    (cell, value.copy())
                    for cell, value in self._bucket_items(bucket)
                ]
                for stripe, bucket in self._dirty.items()
            }

    def flush(self) -> int:
        """Destage every dirty stripe; returns stripes written."""
        with self._lock:
            stripes = list(self._dirty)
            self._destage_many(stripes)
            return len(stripes)

    def _destage(self, stripe: int) -> None:
        with self._lock:
            bucket = self._dirty.pop(stripe)
            self.volume._write_stripe_batch(
                stripe, self._bucket_items(bucket)
            )
            self.destage_count += 1

    def _bucket_items(self, bucket) -> List[Tuple[Cell, np.ndarray]]:
        return sorted(
            bucket.items(), key=lambda kv: self.volume.layout.data_index(kv[0])
        )

    def _destage_many(self, stripes: List[int]) -> None:
        """Coalesced destage: completely dirty stripes flush through the
        batched codec (one encode tensor + one scatter per disk), partial
        stripes keep the per-stripe RMW/reconstruct paths — fanned out
        over the volume's stripe pipeline when it is parallel.  Ordering
        (and ``destage_count``) match destaging each stripe in turn."""
        full: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]] = []
        rest: List[Tuple[int, List[Tuple[Cell, np.ndarray]]]] = []
        per = self.volume.layout.num_data_cells
        with self._lock:
            for stripe in stripes:
                bucket = self._dirty.pop(stripe)
                items = self._bucket_items(bucket)
                (full if len(items) == per else rest).append(
                    (stripe, items)
                )
            if len(full) > 1:
                self.volume._full_stripe_write_batched(full)
            else:
                rest = full + rest
            self.volume._write_rest(rest)
            self.destage_count += len(stripes)
