"""Simulated disk-array substrate: the layer a downstream user adopts.

* :class:`~repro.array.disk.SimDisk` — an element-addressed in-memory disk
  with failure injection and access counters.
* :class:`~repro.array.mapping.AddressMapper` — logical element ↔
  (stripe, cell, disk, offset) translation, with optional stripe rotation.
* :class:`~repro.array.volume.RAID6Volume` — a full RAID-6 volume over any
  registered layout: normal/degraded reads, partial-stripe writes with
  parity RMW, failure injection, rebuild, scrubbing.
"""

from repro.array.cache import StripeCache
from repro.array.disk import DiskState, SimDisk
from repro.array.integrity import ChecksumStore, IntegrityChecker
from repro.array.mapping import AddressMapper
from repro.array.persistence import load_volume, save_volume
from repro.array.pipeline import StripePipeline, worker_count
from repro.array.volume import RAID6Volume

__all__ = [
    "AddressMapper",
    "ChecksumStore",
    "DiskState",
    "IntegrityChecker",
    "RAID6Volume",
    "SimDisk",
    "StripeCache",
    "StripePipeline",
    "load_volume",
    "save_volume",
    "worker_count",
]
