"""Concurrent execution of independent per-stripe tasks.

Stripes are the natural unit of parallelism in a RAID array: two requests
touching different stripes share no cells, no parity, and no disk offsets,
so a controller can run them on separate cores the way an array spreads
them over separate spindles.  :class:`StripePipeline` is the scheduler the
volume layer uses for exactly that — it fans a list of per-stripe tasks
out over a :class:`~concurrent.futures.ThreadPoolExecutor` whose workers
spend their time in numpy/C-kernel calls that release the GIL.

Determinism rules:

* results come back in *submission order*, regardless of completion
  order, so parallel and serial execution produce identical outputs for
  side-effect-free-per-stripe tasks;
* when tasks raise, every task still runs to completion and the
  exception of the **lowest-indexed** failing task is re-raised — the
  same error the serial loop would have surfaced first;
* with ``workers <= 1`` (the default when ``REPRO_WORKERS`` is unset)
  the pipeline degrades to a plain serial loop with zero thread
  machinery, which keeps seed-driven fault injection bit-reproducible.

Tasks are dispatched in contiguous **chunks**, not one future per item:
a future per stripe spends more time in executor bookkeeping (lock
acquisition, queue traffic, result-object churn — all under the GIL)
than a short numpy task spends computing, which is how the one-per-item
scheduler managed to run a 4-worker RMW queue at half the serial speed.
Each worker instead receives a run of ``ceil(n / (workers * 2))`` items
and loops over them inline, so per-dispatch overhead amortises across
the chunk while the tail stays balanced (two waves per worker).  The
effective fan-out is additionally capped at the machine's CPU count:
threads beyond physical cores cannot overlap GIL-released kernel work
and only add contention, so on a single-core host the pipeline simply
runs the serial loop (ratio 1.0 instead of the historical 0.48x).

The worker count comes from the ``REPRO_WORKERS`` environment variable
(``0`` means "one per CPU"; unparsable or negative values warn once and
run serial); constructors can override it explicitly.  Pools are
created lazily on first parallel use,
so the thousands of short-lived volumes the test-suite builds never pay
for thread spawn.

GIL notes
---------

Thread workers only overlap when the kernel under them drops the GIL.
The compiled XOR kernel does — it is loaded through :class:`ctypes.CDLL`,
which releases the GIL for the duration of every foreign call (see
``repro/util/ckernel.py`` and :func:`repro.util.ckernel
.kernel_releases_gil`) — and numpy's own ufunc loops release it for
large operands.  Pure-Python builds that cannot rely on either can set
``REPRO_PROCESS_POOL=1`` (or pass ``process_pool=True``) to route
eligible bulk work through :meth:`StripePipeline.map_process`, a
fork-based :class:`multiprocessing.Pool` whose children operate on
shared-memory views of the volume's backing tensor so no stripe data is
pickled across the process boundary.  Unlike :meth:`map`, the process
path deliberately does **not** cap fan-out at ``os.cpu_count()``:
processes sidestep the GIL entirely, so oversubscription costs only
scheduler time, and capping would silently serialise the equivalence
tests on single-core CI runners.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob naming the stripe-pipeline worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment knob routing eligible bulk work through a process pool.
PROCESS_POOL_ENV = "REPRO_PROCESS_POOL"

#: Values :func:`process_pool_enabled` recognises (lower-cased).
_FLAG_ON = frozenset(("1", "true", "yes", "on"))
_FLAG_OFF = frozenset(("", "0", "false", "no", "off"))

# (env name, raw value) pairs already warned about — a misconfigured
# shell exports the same bad value for every volume the process builds,
# and a warning per volume would bury the signal it carries.
_warned_env: set = set()
_warned_lock = threading.Lock()


def _warn_env_once(env: str, raw: str, fallback: str) -> None:
    key = (env, raw)
    with _warned_lock:
        if key in _warned_env:
            return
        _warned_env.add(key)
    warnings.warn(
        f"ignoring {env}={raw!r}: {fallback}",
        RuntimeWarning,
        stacklevel=3,
    )


def process_pool_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the process-pool opt-in.

    An explicit ``flag`` wins; otherwise ``REPRO_PROCESS_POOL`` is
    consulted: ``1``/``true``/``yes``/``on`` enable it,
    unset/empty/``0``/``false``/``no``/``off`` disable it, and anything
    else warns once (per value, process-wide) and disables it — a typo
    in a deployment script must degrade to the serial default, not
    surface later as a confusing failure inside pool construction.
    """
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(PROCESS_POOL_ENV, "").strip()
    lowered = raw.lower()
    if lowered in _FLAG_ON:
        return True
    if lowered in _FLAG_OFF:
        return False
    _warn_env_once(
        PROCESS_POOL_ENV, raw,
        "expected 0/1/true/false/yes/no/on/off, process pool stays off",
    )
    return False


def worker_count(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    An explicit ``workers`` argument wins (``<= 0`` meaning one worker
    per CPU, the historical constructor contract).  Otherwise
    ``REPRO_WORKERS`` is consulted: unset/empty means serial, ``0``
    means one worker per CPU, and a positive integer is taken as-is.
    Unparsable or negative environment values warn once (per value,
    process-wide) and fall back to serial — they used to be accepted
    silently or surface only as an error deep inside pool construction.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            _warn_env_once(
                WORKERS_ENV, raw,
                "expected an integer, running serial",
            )
            return 1
        if workers < 0:
            _warn_env_once(
                WORKERS_ENV, raw,
                "negative worker counts are invalid, running serial "
                "(use 0 for one worker per CPU)",
            )
            return 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


#: Chunks dispatched per worker: 1 would leave the pool idle whenever
#: chunk runtimes diverge; 2 lets finished workers pick up a second wave
#: while keeping per-chunk dispatch overhead amortised.
_CHUNKS_PER_WORKER = 2


class StripePipeline:
    """Ordered fan-out of independent per-stripe tasks over a thread pool."""

    def __init__(
        self,
        workers: Optional[int] = None,
        process_pool: Optional[bool] = None,
    ) -> None:
        self.workers = worker_count(workers)
        self.process_pool = process_pool_enabled(process_pool)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._procs = None
        self._pool_lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        """Whether this pipeline may run tasks concurrently."""
        return self.workers > 1

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-stripe",
                )
            return self._pool

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        chunk_size: Optional[int] = None,
    ) -> List[R]:
        """Run ``fn`` over ``items``; results in submission order.

        Serial (plain loop) when the pipeline is serial, there is
        nothing to overlap, or thread fan-out cannot pay for itself
        (fewer usable CPUs than workers collapses to however many can
        actually run; one CPU collapses to the serial loop).  In
        parallel mode contiguous chunks of items are dispatched
        (``chunk_size`` items each, default ``ceil(n / (workers * 2))``)
        and every task still runs to completion even if some raise; the
        exception of the first (lowest-indexed) failing task is then
        re-raised, matching what a serial loop would have reported.
        """
        items = list(items)
        n = len(items)
        workers = min(self.workers, os.cpu_count() or 1)
        if workers <= 1 or n < 2:
            return [fn(item) for item in items]
        if chunk_size is None:
            chunk_size = -(-n // (workers * _CHUNKS_PER_WORKER))
        chunk_size = max(1, chunk_size)
        if chunk_size >= n:
            return [fn(item) for item in items]

        def run_chunk(
            chunk: List[T],
        ) -> Tuple[List[R], int, Optional[BaseException]]:
            out: List[R] = []
            exc_at, exc = -1, None
            for i, item in enumerate(chunk):
                try:
                    out.append(fn(item))
                except BaseException as e:  # noqa: BLE001 — re-raised below
                    if exc is None:
                        exc_at, exc = i, e
            return out, exc_at, exc

        pool = self._executor()
        futures = [
            pool.submit(run_chunk, items[i:i + chunk_size])
            for i in range(0, n, chunk_size)
        ]
        results: List[R] = []
        first_idx, first_exc = n, None
        for ci, future in enumerate(futures):
            out, exc_at, exc = future.result()
            results.extend(out)
            if exc is not None and ci * chunk_size + exc_at < first_idx:
                first_idx, first_exc = ci * chunk_size + exc_at, exc
        if first_exc is not None:
            raise first_exc
        return results

    def map_process(
        self,
        fn: Callable[[T], R],
        payloads: Sequence[T],
    ) -> List[R]:
        """Run ``fn`` over ``payloads`` in a fork-based process pool.

        ``fn`` must be a module-level function and each payload must be
        picklable (bulk stripe data travels out-of-band via shared
        memory, so payloads stay small).  Results come back in
        submission order.  The fan-out is ``min(workers, len(payloads))``
        with **no** CPU-count cap — child processes do not share a GIL,
        so they genuinely overlap even when oversubscribed.  Raises
        ``RuntimeError`` when the platform lacks the ``fork`` start
        method (callers fall back to the thread/serial path).
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if len(payloads) == 1 or self.workers <= 1:
            return [fn(p) for p in payloads]
        pool = self._process_pool(min(self.workers, len(payloads)))
        return pool.map(fn, payloads, chunksize=1)

    def _process_pool(self, procs: int):
        import multiprocessing

        with self._pool_lock:
            if self._procs is not None and self._procs[0] >= procs:
                return self._procs[1]
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover — non-POSIX
                raise RuntimeError("fork start method unavailable") from exc
            old = self._procs
            pool = ctx.Pool(processes=procs)
            self._procs = (procs, pool)
        if old is not None:
            old[1].terminate()
            old[1].join()
        return pool

    def close(self) -> None:
        """Shut the worker pools down (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            procs, self._procs = self._procs, None
        if pool is not None:
            pool.shutdown(wait=True)
        if procs is not None:
            procs[1].terminate()
            procs[1].join()

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "running"
        return f"<StripePipeline workers={self.workers} {state}>"
