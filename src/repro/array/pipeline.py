"""Concurrent execution of independent per-stripe tasks.

Stripes are the natural unit of parallelism in a RAID array: two requests
touching different stripes share no cells, no parity, and no disk offsets,
so a controller can run them on separate cores the way an array spreads
them over separate spindles.  :class:`StripePipeline` is the scheduler the
volume layer uses for exactly that — it fans a list of per-stripe tasks
out over a :class:`~concurrent.futures.ThreadPoolExecutor` whose workers
spend their time in numpy/C-kernel calls that release the GIL.

Determinism rules:

* results come back in *submission order*, regardless of completion
  order, so parallel and serial execution produce identical outputs for
  side-effect-free-per-stripe tasks;
* when tasks raise, every task still runs to completion and the
  exception of the **lowest-indexed** failing task is re-raised — the
  same error the serial loop would have surfaced first;
* with ``workers <= 1`` (the default when ``REPRO_WORKERS`` is unset)
  the pipeline degrades to a plain serial loop with zero thread
  machinery, which keeps seed-driven fault injection bit-reproducible.

The worker count comes from the ``REPRO_WORKERS`` environment variable
(``0`` or a negative value means "one per CPU"); constructors can
override it explicitly.  Pools are created lazily on first parallel use,
so the thousands of short-lived volumes the test-suite builds never pay
for thread spawn.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob naming the stripe-pipeline worker count.
WORKERS_ENV = "REPRO_WORKERS"


def worker_count(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    An explicit ``workers`` wins; otherwise ``REPRO_WORKERS`` is
    consulted (unset/empty/unparsable -> 1, i.e. serial; ``0`` or
    negative -> one worker per CPU).
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            return 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


class StripePipeline:
    """Ordered fan-out of independent per-stripe tasks over a thread pool."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = worker_count(workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        """Whether this pipeline may run tasks concurrently."""
        return self.workers > 1

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-stripe",
                )
            return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``items``; results in submission order.

        Serial (plain loop) when the pipeline is serial or there is
        nothing to overlap.  In parallel mode every task runs to
        completion even if some raise; the exception of the first
        (lowest-indexed) failing task is then re-raised, matching what a
        serial loop would have reported.
        """
        items = list(items)
        if self.workers <= 1 or len(items) < 2:
            return [fn(item) for item in items]
        futures = [self._executor().submit(fn, item) for item in items]
        results: List[R] = []
        first_exc: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        return results

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "running"
        return f"<StripePipeline workers={self.workers} {state}>"
