"""Block-checksum integrity layer: locating and healing silent corruption.

Parity alone *detects* that a stripe is inconsistent but cannot say which
cell rotted — RAID-6 can rebuild erasures (known positions), not errors
(unknown positions).  Production arrays therefore keep a per-block
checksum out of band; a mismatching block becomes a located erasure and
the ordinary decoder repairs it.  This module provides that layer for
:class:`~repro.array.volume.RAID6Volume`:

* :class:`ChecksumStore` — CRC-32 per ``(disk, offset)``, updated on every
  write, plus a runtime verified-bitmap that makes foreground
  verification edge-triggered;
* :class:`IntegrityChecker` — wires end-to-end **verified reads** into
  the volume (a healthy read that returns bytes disagreeing with their
  CRC is treated as an erasure: reconstructed from parity, rewritten,
  re-recorded, counted in ``heal_log`` and toward
  :class:`~repro.faults.policy.ErrorPolicy` escalation), volume-wide
  corruption location (:meth:`IntegrityChecker.find_corruption`, a
  batched CRC sweep), verify-and-repair, and :meth:`IntegrityChecker.
  scrub_campaign` — the tensor scrub engine that finds flips the disk
  never reported and disambiguates data- vs parity-corruption by
  cross-checking parity consistency against the checksum store.

Verified-read cost model (docs/robustness.md, "Silent corruption &
durability"): each block pays one CRC on its *first* read since
attach/write — after that a bitmap lookup suffices, so steady-state
batched reads stay within a few percent of unverified ones.  Writes
clear the block's bit (catching corruption-on-write at the next read);
scrub campaigns re-verify everything regardless of the bitmap, bounding
the detection latency of at-rest rot.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.array.volume import _CELL_ERRORS, RAID6Volume
from repro.codec.batch import blank_batch, encode_batch
from repro.codes.base import Cell
from repro.exceptions import InconsistentStripeError, LatentSectorError
from repro.util.validation import require


def crc32(block: np.ndarray) -> int:
    """CRC-32 of one element buffer."""
    return zlib.crc32(block.tobytes()) & 0xFFFFFFFF


class ChecksumStore:
    """Out-of-band CRC-32 map keyed by ``(disk, offset)``.

    Blocks never written have an implicit checksum of the all-zero block,
    matching the volume's zero-initialised disks.

    When :meth:`attach_geometry` has been called (the
    :class:`IntegrityChecker` does this), the store additionally tracks a
    per-block **verified bitmap** — purely runtime state, never
    persisted: a set bit means the block's content was CRC-checked since
    it was last written, so the batched read paths can skip re-hashing
    it.  :meth:`record` clears the bit (fresh writes are unverified until
    read back); :meth:`forget_disk` clears the disk's whole column.
    """

    def __init__(self, element_size: int) -> None:
        self._sums: Dict[Tuple[int, int], int] = {}
        self._zero_sum = crc32(np.zeros(element_size, dtype=np.uint8))
        self._verified: Optional[np.ndarray] = None

    def attach_geometry(self, num_disks: int, capacity: int) -> None:
        """Allocate the verified bitmap for ``num_disks × capacity``."""
        if self._verified is None or \
                self._verified.shape != (num_disks, capacity):
            self._verified = np.zeros((num_disks, capacity), dtype=bool)

    def record(self, disk: int, offset: int, block: np.ndarray) -> None:
        self._sums[(disk, offset)] = crc32(block)
        if self._verified is not None:
            self._verified[disk, offset] = False

    def expected(self, disk: int, offset: int) -> int:
        return self._sums.get((disk, offset), self._zero_sum)

    def expected_dense(self, disk: int, capacity: int) -> np.ndarray:
        """Every expected CRC of one disk as a dense ``uint64`` vector."""
        out = np.full(capacity, self._zero_sum, dtype=np.uint64)
        for (d, offset), crc in self._sums.items():
            if d == disk and 0 <= offset < capacity:
                out[offset] = crc
        return out

    def matches(self, disk: int, offset: int, block: np.ndarray) -> bool:
        return crc32(block) == self.expected(disk, offset)

    def mark_verified(self, disk: int, offsets: np.ndarray) -> None:
        if self._verified is not None:
            self._verified[disk, offsets] = True

    def invalidate(self) -> None:
        """Clear the whole verified bitmap (every next read re-checks)."""
        if self._verified is not None:
            self._verified[:] = False

    def forget_disk(self, disk: int) -> None:
        """Drop every checksum of a disk (after replacement).

        Forgotten entries fall back to the implicit all-zero digest —
        which is exactly what a freshly blanked replacement disk holds —
        and the disk's verified bits clear, so every block re-verifies as
        the rebuild cursor repopulates (and re-records) it.
        """
        for key in [k for k in self._sums if k[0] == disk]:
            del self._sums[key]
        if self._verified is not None:
            self._verified[disk, :] = False


@dataclass
class ScrubCampaignReport:
    """Result of one :meth:`IntegrityChecker.scrub_campaign` sweep.

    ``repaired_data`` / ``repaired_parity`` list the healed cells as
    ``(stripe, cell)`` — classified by whether the rotten block held data
    or parity, which the digest cross-check makes unambiguous.
    ``unattributed`` lists stripes whose parity is inconsistent while
    every block *matches* its digest — corruption that predates the
    checksum record (or a rotten store), which cannot be located and is
    never auto-repaired.
    """

    stripes_scanned: int = 0
    elements_read: int = 0
    repaired_data: List[Tuple[int, Cell]] = field(default_factory=list)
    repaired_parity: List[Tuple[int, Cell]] = field(default_factory=list)
    unattributed: List[int] = field(default_factory=list)

    @property
    def repaired_count(self) -> int:
        return len(self.repaired_data) + len(self.repaired_parity)

    @property
    def clean(self) -> bool:
        return not self.repaired_count and not self.unattributed

    def __repr__(self) -> str:
        return (
            f"<ScrubCampaignReport stripes={self.stripes_scanned} "
            f"data={len(self.repaired_data)} "
            f"parity={len(self.repaired_parity)} "
            f"unattributed={len(self.unattributed)} "
            f"reads={self.elements_read}>"
        )


class IntegrityChecker:
    """Attach checksumming to a volume and scrub with error *location*.

    Wraps *both* of the volume's write funnels — per-element
    ``_write_cell`` and the tensor paths' block scatter
    ``_disk_write_block`` — so batched bulk writes, cache destages and
    rebuild sweeps keep the checksum map current exactly like the serial
    path does.  Pass ``store=`` (e.g. the one
    :func:`~repro.array.persistence.load_volume` hands back on a v2
    archive) to resume an existing map instead of re-seeding from the
    current disk contents.

    With ``verify_reads=True`` (the default) the volume's read paths
    check every block against the store — scalar reads on every access,
    batched gathers edge-triggered through the verified bitmap — and
    surface mismatches as located erasures that the self-healing ladder
    repairs inline.  Seeded checksums start *verified* (they were just
    computed from the bytes on disk); a resumed store starts fully
    unverified, so the first read after a mount re-checks everything it
    touches.
    """

    def __init__(
        self,
        volume: RAID6Volume,
        store: Optional[ChecksumStore] = None,
        verify_reads: bool = True,
    ) -> None:
        self.volume = volume
        self.verify_reads = verify_reads
        # route every future write through the recorders
        self._inner_write = volume._write_cell
        volume._write_cell = self._recording_write  # type: ignore[assignment]
        self._inner_write_block = volume._disk_write_block
        volume._disk_write_block = (  # type: ignore[assignment]
            self._recording_write_block
        )
        volume.integrity = self
        if store is not None:
            self.store = store
            self.store.attach_geometry(
                len(volume.disks), volume.mapper.disk_capacity
            )
            return
        self.store = ChecksumStore(volume.element_size)
        self.store.attach_geometry(
            len(volume.disks), volume.mapper.disk_capacity
        )
        self._seed()

    def detach(self) -> None:
        """Restore the volume's unwrapped write funnels and read paths."""
        volume = self.volume
        if volume.__dict__.get("_write_cell") == self._recording_write:
            volume._write_cell = self._inner_write  # type: ignore[assignment]
        if volume.__dict__.get("_disk_write_block") == \
                self._recording_write_block:
            volume._disk_write_block = (  # type: ignore[assignment]
                self._inner_write_block
            )
        if volume.integrity is self:
            volume.integrity = None

    # -- seeding ------------------------------------------------------------

    def _seed(self) -> None:
        """Record a checksum for every currently readable block.

        Seeded digests are marked verified — they were computed from the
        bytes just read, so re-hashing them on the next read would prove
        nothing new.  Uses one gather per disk when the fault surface is
        quiet; otherwise the per-element walk (identical counters, and it
        skips failed disks and latent sectors exactly as before).
        """
        volume = self.volume
        if not volume.mapper.rotate and not volume.failed_disks \
                and volume._batch_io_ok():
            rows = volume.layout.rows
            stripes = np.arange(volume.mapper.num_stripes, dtype=np.intp)
            for col in range(volume.layout.cols):
                col_rows = volume._col_rows[col]
                offsets = (
                    stripes[:, None] * rows + col_rows[None, :]
                ).ravel()
                block = volume.disks[col].read_block(offsets)
                for i, offset in enumerate(offsets.tolist()):
                    self.store._sums[(col, offset)] = crc32(block[i])
                self.store.mark_verified(col, offsets)
            return
        for stripe in range(volume.mapper.num_stripes):
            for col in range(volume.layout.cols):
                for cell in volume.layout.cells_in_column(col):
                    loc = volume.mapper.locate_cell(stripe, cell)
                    if volume.disks[loc.disk].failed:
                        continue
                    try:
                        block = volume.disks[loc.disk].read(loc.offset)
                    except LatentSectorError:
                        continue
                    self.store._sums[(loc.disk, loc.offset)] = crc32(block)
                    self.store.mark_verified(
                        loc.disk, np.array([loc.offset], dtype=np.intp)
                    )

    # -- write recording -----------------------------------------------------

    def _recording_write(self, stripe: int, cell: Cell, value) -> None:
        self._inner_write(stripe, cell, value)
        loc = self.volume.mapper.locate_cell(stripe, cell)
        self.store.record(loc.disk, loc.offset, value)

    def _recording_write_block(
        self, disk_id: int, offsets: np.ndarray, data: np.ndarray
    ) -> None:
        self._inner_write_block(disk_id, offsets, data)
        sums = self.store._sums
        for offset, row in zip(np.asarray(offsets).tolist(), data):
            sums[(disk_id, int(offset))] = crc32(row)
        if self.store._verified is not None:
            self.store._verified[disk_id, np.asarray(offsets)] = False

    # -- verified-read hooks (called by the volume) --------------------------

    def check_block(
        self, disk_id: int, offset: int, block: np.ndarray
    ) -> bool:
        """Scalar verification: always re-hash, mark verified on match."""
        if crc32(block) != self.store.expected(disk_id, offset):
            return False
        if self.store._verified is not None:
            self.store._verified[disk_id, offset] = True
        return True

    def verify_rows(
        self, disk_id: int, offsets: np.ndarray, data: np.ndarray
    ) -> np.ndarray:
        """Edge-triggered verification of one gather.

        Hashes only the rows whose verified bit is clear, marks matches
        verified, and returns the positions (indices into ``offsets``)
        that mismatched.  Steady state — everything already verified —
        costs one bitmap gather and no CRC at all.
        """
        verified = self.store._verified
        offsets = np.asarray(offsets, dtype=np.intp)
        if verified is None:
            need = np.arange(len(offsets), dtype=np.intp)
        else:
            need = np.flatnonzero(~verified[disk_id, offsets])
        if not need.size:
            return need
        expected = self.store
        bad: List[int] = []
        for i in need.tolist():
            offset = int(offsets[i])
            if crc32(data[i]) == expected.expected(disk_id, offset):
                if verified is not None:
                    verified[disk_id, offset] = True
            else:
                bad.append(i)
        return np.array(bad, dtype=np.intp)

    def range_verified(self, stripe: int) -> bool:
        """Whether every data block of ``stripe`` is verification-current
        (the zero-copy read path's precondition)."""
        verified = self.store._verified
        if verified is None:
            return False
        volume = self.volume
        base = stripe * volume.layout.rows
        return bool(
            verified[volume._data_cols, base + volume._data_rows].all()
        )

    def on_disk_replaced(self, disk: int) -> None:
        """The volume swapped in a blank replacement for ``disk``."""
        self.store.forget_disk(disk)

    # -- scrubbing -----------------------------------------------------------

    def find_corruption(self) -> Dict[int, List[Cell]]:
        """Stripe -> cells whose content no longer matches its checksum.

        One :meth:`~repro.array.disk.SimDisk.read_block` gather and one
        CRC sweep per disk when the fault surface is quiet; the
        per-element walk otherwise (latent sectors report as corrupt
        cells either way).  Byte- and counter-identical to the historical
        scalar walk.
        """
        volume = self.volume
        require(not volume.failed_disks,
                "cannot verify with failed disks present")
        if volume.mapper.rotate or not volume._batch_io_ok():
            return self._find_corruption_serial()
        rows = volume.layout.rows
        stripes = np.arange(volume.mapper.num_stripes, dtype=np.intp)
        corrupt: Dict[int, List[Cell]] = {}
        for col in range(volume.layout.cols):
            cells = volume.layout.cells_in_column(col)
            col_rows = volume._col_rows[col]
            offsets = (
                stripes[:, None] * rows + col_rows[None, :]
            ).ravel()
            block = volume.disks[col].read_block(offsets)
            sums = np.fromiter(
                (zlib.crc32(row.tobytes()) for row in block),
                dtype=np.uint64, count=len(block),
            )
            expected = self.store.expected_dense(
                col, volume.mapper.disk_capacity
            )[offsets]
            mismatch = sums != expected
            bad = np.flatnonzero(mismatch)
            for b in bad.tolist():
                stripe, k = divmod(b, len(cells))
                corrupt.setdefault(int(stripes[stripe]), []).append(
                    cells[k]
                )
            self.store.mark_verified(col, offsets[~mismatch])
        # per-stripe cell order already matches the scalar walk (columns
        # ascend, and within a column the flat mismatch indices ascend);
        # normalise stripe order to the scalar walk's ascending scan
        return dict(sorted(corrupt.items()))

    def _find_corruption_serial(self) -> Dict[int, List[Cell]]:
        """The historical per-element walk (rotation / noisy surface)."""
        volume = self.volume
        corrupt: Dict[int, List[Cell]] = {}
        for stripe in range(volume.mapper.num_stripes):
            bad: List[Cell] = []
            for col in range(volume.layout.cols):
                for cell in volume.layout.cells_in_column(col):
                    loc = volume.mapper.locate_cell(stripe, cell)
                    try:
                        block = volume.disks[loc.disk].read(loc.offset)
                    except LatentSectorError:
                        bad.append(cell)
                        continue
                    if not self.store.matches(loc.disk, loc.offset, block):
                        bad.append(cell)
                    else:
                        self.store.mark_verified(
                            loc.disk, np.array([loc.offset], dtype=np.intp)
                        )
            if bad:
                corrupt[stripe] = bad
        return corrupt

    def verify_and_repair(self) -> Dict[int, List[Cell]]:
        """Locate corrupt/unreadable cells, decode them, rewrite.

        Returns the repairs performed.  Raises
        :class:`InconsistentStripeError` when a stripe has more damage
        than its equations can solve — data loss, reported loudly.
        """
        volume = self.volume
        repaired = self.find_corruption()
        for stripe, bad in repaired.items():
            buf = volume.codec.blank_stripe()
            for col in range(volume.layout.cols):
                for cell in volume.layout.cells_in_column(col):
                    if cell in bad:
                        continue
                    try:
                        buf[cell.row, cell.col] = volume._read_cell(
                            stripe, cell
                        )
                    except _CELL_ERRORS:
                        bad.append(cell)
            try:
                volume._decode_cells(buf, list(bad))
            except Exception as exc:
                raise InconsistentStripeError(
                    f"stripe {stripe}: {len(bad)} damaged cells exceed "
                    f"recoverability ({exc})"
                ) from exc
            for cell in bad:
                volume._write_cell(stripe, cell, buf[cell.row, cell.col])
        return repaired

    #: Stripes per tensor chunk in the campaign sweep (matches the
    #: volume's batched parity scrub).
    _CAMPAIGN_CHUNK = 16

    def scrub_campaign(
        self, chunk: Optional[int] = None, strict: bool = True
    ) -> ScrubCampaignReport:
        """Full-volume silent-corruption scrub: detect, locate, heal.

        The campaign engine behind ``docs/robustness.md`` ("Silent
        corruption & durability"): every block of every stripe is
        re-hashed against the checksum store (the verified bitmap is
        *not* trusted — a campaign bounds the detection latency of
        at-rest rot), digest-mismatching cells become located erasures
        decoded from parity and rewritten-and-re-recorded, and each
        stripe's parity is then cross-checked against the canonical
        re-encode.  A stripe whose parity disagrees while every block
        matches its digest is **unattributed** corruption — with
        ``strict=True`` (default) that raises
        :class:`InconsistentStripeError`; otherwise the stripe is
        reported in :attr:`ScrubCampaignReport.unattributed` and left
        untouched.  A stripe with more rotten cells than its code can
        decode raises a typed
        :class:`~repro.exceptions.UnrecoverableStripeError`.

        Runs as 16-stripe tensor chunks (one gather + one CRC sweep per
        disk per chunk) when the fault surface is quiet, falling back to
        the deterministic per-element walk under fault hooks, rotation or
        latent sectors — so chaos campaigns replay bit-identically.
        """
        volume = self.volume
        require(not volume.failed_disks and (
            volume._rebuild is None or not volume._rebuild.active
        ), "cannot scrub with failed or rebuilding disks present")
        if chunk is None:
            chunk = self._CAMPAIGN_CHUNK
        report = ScrubCampaignReport()
        batched = not volume.mapper.rotate and volume._batch_io_ok()
        num_stripes = volume.mapper.num_stripes
        for start in range(0, num_stripes, chunk):
            end = min(start + chunk, num_stripes)
            if batched:
                self._campaign_chunk_batched(start, end, report, strict)
            else:
                for stripe in range(start, end):
                    self._campaign_stripe_serial(stripe, report, strict)
        return report

    def _campaign_chunk_batched(
        self, start: int, end: int,
        report: ScrubCampaignReport, strict: bool,
    ) -> None:
        volume = self.volume
        rows = volume.layout.rows
        batch = end - start
        stripes = np.arange(start, end, dtype=np.intp)
        buf = blank_batch(volume.codec, batch)
        bad_cells: Dict[int, List[Cell]] = {}
        for col in range(volume.layout.cols):
            cells = volume.layout.cells_in_column(col)
            col_rows = volume._col_rows[col]
            offsets = (
                stripes[:, None] * rows + col_rows[None, :]
            ).ravel()
            block = volume.disks[col].read_block(offsets)
            report.elements_read += int(offsets.size)
            buf[:, col_rows, col, :] = block.reshape(
                batch, len(col_rows), volume.element_size
            )
            sums = np.fromiter(
                (zlib.crc32(row.tobytes()) for row in block),
                dtype=np.uint64, count=len(block),
            )
            expected = self.store.expected_dense(
                col, volume.mapper.disk_capacity
            )[offsets]
            mismatch = sums != expected
            for b in np.flatnonzero(mismatch).tolist():
                i, k = divmod(b, len(cells))
                bad_cells.setdefault(i, []).append(cells[k])
            self.store.mark_verified(col, offsets[~mismatch])
        for i, bad in sorted(bad_cells.items()):
            stripe = int(stripes[i])
            volume._decode_cells_checked(stripe, buf[i], bad)
            for cell in bad:
                volume._write_cell(stripe, cell, buf[i, cell.row, cell.col])
                self._classify(report, stripe, cell)
        report.stripes_scanned += batch
        # parity cross-check on the (now repaired) chunk: a mismatch with
        # no digest evidence cannot be located
        enc = buf.copy()
        encode_batch(volume.codec, enc)
        inconsistent = (enc != buf).reshape(batch, -1).any(axis=1)
        for i in np.flatnonzero(inconsistent).tolist():
            self._unattributed(report, int(stripes[i]), strict)

    def _campaign_stripe_serial(
        self, stripe: int, report: ScrubCampaignReport, strict: bool
    ) -> None:
        volume = self.volume
        buf = volume.codec.blank_stripe()
        bad: List[Cell] = []
        for col in range(volume.layout.cols):
            for cell in volume.layout.cells_in_column(col):
                loc = volume.mapper.locate_cell(stripe, cell)
                try:
                    block = volume._disk_read(loc.disk, loc.offset)
                    report.elements_read += 1
                except _CELL_ERRORS:
                    bad.append(cell)
                    continue
                if not self.store.matches(loc.disk, loc.offset, block):
                    # explicit digest check: covers verify_reads=False
                    # (and costs nothing extra — campaigns re-hash by
                    # design)
                    bad.append(cell)
                    continue
                self.store.mark_verified(
                    loc.disk, np.array([loc.offset], dtype=np.intp)
                )
                buf[cell.row, cell.col] = block
        if bad:
            volume._decode_cells_checked(stripe, buf, bad)
            for cell in bad:
                volume._write_cell(stripe, cell, buf[cell.row, cell.col])
                self._classify(report, stripe, cell)
        report.stripes_scanned += 1
        if not volume.codec.parity_ok(buf):
            self._unattributed(report, stripe, strict)

    def _classify(
        self, report: ScrubCampaignReport, stripe: int, cell: Cell
    ) -> None:
        if self.volume.layout.is_data(cell):
            report.repaired_data.append((stripe, cell))
        else:
            report.repaired_parity.append((stripe, cell))

    def _unattributed(
        self, report: ScrubCampaignReport, stripe: int, strict: bool
    ) -> None:
        if strict:
            raise InconsistentStripeError(
                f"stripe {stripe}: parity inconsistent but every block "
                f"matches its checksum — corruption cannot be located"
            )
        report.unattributed.append(stripe)
