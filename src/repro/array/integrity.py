"""Block-checksum integrity layer: locating silent corruption.

Parity alone *detects* that a stripe is inconsistent but cannot say which
cell rotted — RAID-6 can rebuild erasures (known positions), not errors
(unknown positions).  Production arrays therefore keep a per-block
checksum out of band; a mismatching block becomes a located erasure and
the ordinary decoder repairs it.  This module provides that layer for
:class:`~repro.array.volume.RAID6Volume`:

* :class:`ChecksumStore` — CRC-32 per ``(disk, offset)``, updated on every
  write;
* :class:`IntegrityChecker` — volume-wide verify, and verify-and-repair
  that turns mismatches into erasures, decodes them (up to the stripe's
  information-theoretic limit, which for whole-stripe equations can
  exceed two cells when they sit in distinct columns) and rewrites the
  healed cells.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.array.volume import RAID6Volume
from repro.codes.base import Cell
from repro.exceptions import InconsistentStripeError, LatentSectorError
from repro.util.validation import require


def crc32(block: np.ndarray) -> int:
    """CRC-32 of one element buffer."""
    return zlib.crc32(block.tobytes()) & 0xFFFFFFFF


class ChecksumStore:
    """Out-of-band CRC-32 map keyed by ``(disk, offset)``.

    Blocks never written have an implicit checksum of the all-zero block,
    matching the volume's zero-initialised disks.
    """

    def __init__(self, element_size: int) -> None:
        self._sums: Dict[Tuple[int, int], int] = {}
        self._zero_sum = crc32(np.zeros(element_size, dtype=np.uint8))

    def record(self, disk: int, offset: int, block: np.ndarray) -> None:
        self._sums[(disk, offset)] = crc32(block)

    def expected(self, disk: int, offset: int) -> int:
        return self._sums.get((disk, offset), self._zero_sum)

    def matches(self, disk: int, offset: int, block: np.ndarray) -> bool:
        return crc32(block) == self.expected(disk, offset)

    def forget_disk(self, disk: int) -> None:
        """Drop every checksum of a disk (after replacement)."""
        for key in [k for k in self._sums if k[0] == disk]:
            del self._sums[key]


class IntegrityChecker:
    """Attach checksumming to a volume and scrub with error *location*.

    Wraps *both* of the volume's write funnels — per-element
    ``_write_cell`` and the tensor paths' block scatter
    ``_disk_write_block`` — so batched bulk writes, cache destages and
    rebuild sweeps keep the checksum map current exactly like the serial
    path does.  Pass ``store=`` (e.g. the one
    :func:`~repro.array.persistence.load_volume` hands back on a v2
    archive) to resume an existing map instead of re-seeding from the
    current disk contents.
    """

    def __init__(
        self,
        volume: RAID6Volume,
        store: Optional[ChecksumStore] = None,
    ) -> None:
        self.volume = volume
        # route every future write through the recorders
        self._inner_write = volume._write_cell
        volume._write_cell = self._recording_write  # type: ignore[assignment]
        self._inner_write_block = volume._disk_write_block
        volume._disk_write_block = (  # type: ignore[assignment]
            self._recording_write_block
        )
        if store is not None:
            self.store = store
            return
        self.store = ChecksumStore(volume.element_size)
        # seed checksums for current contents
        for stripe in range(volume.mapper.num_stripes):
            for col in range(volume.layout.cols):
                for cell in volume.layout.cells_in_column(col):
                    loc = volume.mapper.locate_cell(stripe, cell)
                    if volume.disks[loc.disk].failed:
                        continue
                    try:
                        block = volume.disks[loc.disk].read(loc.offset)
                    except LatentSectorError:
                        continue
                    self.store.record(loc.disk, loc.offset, block)

    def _recording_write(self, stripe: int, cell: Cell, value) -> None:
        self._inner_write(stripe, cell, value)
        loc = self.volume.mapper.locate_cell(stripe, cell)
        self.store.record(loc.disk, loc.offset, value)

    def _recording_write_block(
        self, disk_id: int, offsets: np.ndarray, data: np.ndarray
    ) -> None:
        self._inner_write_block(disk_id, offsets, data)
        for offset, row in zip(np.asarray(offsets).tolist(), data):
            self.store.record(disk_id, int(offset), row)

    # -- scrubbing -----------------------------------------------------------

    def find_corruption(self) -> Dict[int, List[Cell]]:
        """Stripe -> cells whose content no longer matches its checksum."""
        volume = self.volume
        require(not volume.failed_disks,
                "cannot verify with failed disks present")
        corrupt: Dict[int, List[Cell]] = {}
        for stripe in range(volume.mapper.num_stripes):
            bad: List[Cell] = []
            for col in range(volume.layout.cols):
                for cell in volume.layout.cells_in_column(col):
                    loc = volume.mapper.locate_cell(stripe, cell)
                    try:
                        block = volume.disks[loc.disk].read(loc.offset)
                    except LatentSectorError:
                        bad.append(cell)
                        continue
                    if not self.store.matches(loc.disk, loc.offset, block):
                        bad.append(cell)
            if bad:
                corrupt[stripe] = bad
        return corrupt

    def verify_and_repair(self) -> Dict[int, List[Cell]]:
        """Locate corrupt/unreadable cells, decode them, rewrite.

        Returns the repairs performed.  Raises
        :class:`InconsistentStripeError` when a stripe has more damage
        than its equations can solve — data loss, reported loudly.
        """
        volume = self.volume
        repaired = self.find_corruption()
        for stripe, bad in repaired.items():
            buf = volume.codec.blank_stripe()
            for col in range(volume.layout.cols):
                for cell in volume.layout.cells_in_column(col):
                    if cell in bad:
                        continue
                    try:
                        buf[cell.row, cell.col] = volume._read_cell(
                            stripe, cell
                        )
                    except LatentSectorError:
                        bad.append(cell)
            try:
                volume._decode_cells(buf, list(bad))
            except Exception as exc:
                raise InconsistentStripeError(
                    f"stripe {stripe}: {len(bad)} damaged cells exceed "
                    f"recoverability ({exc})"
                ) from exc
            for cell in bad:
                volume._write_cell(stripe, cell, buf[cell.row, cell.col])
        return repaired
