"""Volume persistence: save and restore a simulated array.

Long experiments (fault campaigns, trace replays) benefit from durable
state: the whole array — every disk's blocks, failure states, bad-sector
maps, geometry — round-trips through one ``.npz`` archive.  Loading
re-validates geometry against a freshly built layout, so an archive
produced by a different code/prime/shape fails loudly instead of serving
garbage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.array.disk import DiskState
from repro.array.volume import RAID6Volume
from repro.codes.registry import make_code
from repro.exceptions import ReproError

#: Archive format version — bump on incompatible layout changes.
FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """The archive is missing, malformed, or mismatches the geometry."""


def save_volume(volume: RAID6Volume, path: Union[str, Path]) -> Path:
    """Write the volume to ``path`` (``.npz``); returns the path."""
    path = Path(path)
    meta = {
        "format": FORMAT_VERSION,
        "code": volume.layout.name,
        "p": volume.layout.p,
        "num_stripes": volume.mapper.num_stripes,
        "element_size": volume.element_size,
        "rotate": volume.mapper.rotate,
        "failed": sorted(volume.failed_disks),
        "bad_sectors": {
            str(d.disk_id): sorted(d.bad_sectors) for d in volume.disks
        },
    }
    arrays = {
        f"disk_{d.disk_id}": d._store for d in volume.disks
    }
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)
    return path


def load_volume(path: Union[str, Path]) -> RAID6Volume:
    """Rebuild a volume from an archive written by :func:`save_volume`."""
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no archive at {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            meta = json.loads(str(archive["meta"]))
        except (KeyError, json.JSONDecodeError) as exc:
            raise PersistenceError(f"{path}: missing/corrupt metadata") from exc
        if meta.get("format") != FORMAT_VERSION:
            raise PersistenceError(
                f"{path}: format {meta.get('format')} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        layout = make_code(meta["code"], meta["p"])
        volume = RAID6Volume(
            layout,
            num_stripes=meta["num_stripes"],
            element_size=meta["element_size"],
            rotate=meta["rotate"],
        )
        for disk in volume.disks:
            key = f"disk_{disk.disk_id}"
            if key not in archive:
                raise PersistenceError(f"{path}: missing {key}")
            stored = archive[key]
            if stored.shape != disk._store.shape:
                raise PersistenceError(
                    f"{path}: {key} has shape {stored.shape}, geometry "
                    f"expects {disk._store.shape}"
                )
            disk._store[:] = stored
        for disk_id, offsets in meta["bad_sectors"].items():
            disk = volume.disks[int(disk_id)]
            for offset in offsets:
                disk.mark_bad(int(offset))
        for disk_id in meta["failed"]:
            volume.disks[int(disk_id)].state = DiskState.FAILED
    return volume
