"""Volume persistence: save and restore a simulated array.

Long experiments (fault campaigns, trace replays) benefit from durable
state: the whole array — every disk's blocks, failure states, bad-sector
maps, geometry — round-trips through one ``.npz`` archive.  Loading
re-validates geometry against a freshly built layout, so an archive
produced by a different code/prime/shape fails loudly instead of serving
garbage.

Format v2 additionally captures the crash-consistency state: the
write-intent journal (open intents with their redo payloads and parity
digests, plus the sequence counter) and an optional block-checksum map.
A snapshot taken mid-campaign therefore remounts with recovery still
pending, exactly like NVRAM surviving a power cycle.  v1 archives load
with an explicit warning that no journal state exists.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.array.disk import DiskState
from repro.array.integrity import ChecksumStore
from repro.array.volume import RAID6Volume
from repro.codes.base import Cell
from repro.codes.registry import make_code
from repro.exceptions import ReproError
from repro.journal.intent import GroupFrame, WriteIntent, WriteIntentLog

#: Archive format version — bump on incompatible layout changes.
#: v2 adds journal + checksum state; v1 archives still load (read-only
#: compatibility) with a "no journal" warning.
FORMAT_VERSION = 2


class PersistenceError(ReproError):
    """The archive is missing, malformed, or mismatches the geometry."""


def save_volume(
    volume: RAID6Volume,
    path: Union[str, Path],
    checksums: Optional[ChecksumStore] = None,
    extra_meta: Optional[dict] = None,
) -> Path:
    """Write the volume to ``path`` (``.npz``); returns the path.

    The volume's attached journal (if any) is persisted with it — open
    intents, redo payloads, sequence counter — so recovery survives the
    save/load cycle.  ``checksums`` optionally embeds an
    :class:`~repro.array.integrity.ChecksumStore` snapshot; on load it
    comes back as ``volume.restored_checksums``.  ``extra_meta`` is an
    opaque JSON-serialisable dict stored alongside the standard fields
    and restored as ``volume.extra_meta`` — the serving layer uses it to
    stamp base snapshots with their delta-log epoch
    (:mod:`repro.serve.checkpoint`).
    """
    path = Path(path)
    meta = {
        "format": FORMAT_VERSION,
        "code": volume.layout.name,
        "p": volume.layout.p,
        "num_stripes": volume.mapper.num_stripes,
        "element_size": volume.element_size,
        "rotate": volume.mapper.rotate,
        "failed": sorted(volume.failed_disks),
        "bad_sectors": {
            str(d.disk_id): sorted(d.bad_sectors) for d in volume.disks
        },
    }
    arrays = {
        f"disk_{d.disk_id}": d._store for d in volume.disks
    }
    journal = volume.journal
    if journal is not None:
        open_intents = journal.open_intents()
        meta["journal"] = {
            "next_seq": journal.next_seq,
            "open": [
                {
                    "seq": intent.seq,
                    "stripe": intent.stripe,
                    "cells": [[c.row, c.col] for c in intent.dirty_cells],
                    "old_parity_digest": intent.old_parity_digest,
                    "new_parity_digest": intent.new_parity_digest,
                    # group-commit framing (docs/robustness.md, "Journal
                    # format"): members of one burst share group_seq, and
                    # recovery's joint verdict needs the frame restored
                    **(
                        {
                            "group_seq": intent.group.group_seq,
                            "group_size": intent.group.size,
                            "group_old_digest": intent.group.old_digest,
                        }
                        if intent.group is not None else {}
                    ),
                }
                for intent in open_intents
            ],
        }
        for intent in open_intents:
            payload = intent.payload()
            arrays[f"intent_{intent.seq}"] = np.stack(
                [payload[cell] for cell in intent.dirty_cells]
            )
    if checksums is not None:
        meta["checksums"] = [
            [disk, offset, crc]
            for (disk, offset), crc in sorted(checksums._sums.items())
        ]
    if extra_meta:
        meta["extra"] = extra_meta
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)
    return path


def load_volume(path: Union[str, Path]) -> RAID6Volume:
    """Rebuild a volume from an archive written by :func:`save_volume`.

    v2 archives come back with their :class:`WriteIntentLog` reattached
    (``volume.journal``) and any embedded checksum map available as
    ``volume.restored_checksums``; call
    :func:`repro.journal.recover_on_mount` next, as a real mount would.
    v1 archives carry no journal state — loading one warns explicitly
    that crashed writes (if any) cannot be replayed.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no archive at {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            meta = json.loads(str(archive["meta"]))
        except (KeyError, json.JSONDecodeError) as exc:
            raise PersistenceError(f"{path}: missing/corrupt metadata") from exc
        fmt = meta.get("format")
        if fmt not in (1, FORMAT_VERSION):
            raise PersistenceError(
                f"{path}: format {fmt} unsupported "
                f"(expected 1..{FORMAT_VERSION})"
            )
        layout = make_code(meta["code"], meta["p"])
        journal: Optional[WriteIntentLog] = None
        if fmt >= 2 and "journal" in meta:
            journal = WriteIntentLog()
        volume = RAID6Volume(
            layout,
            num_stripes=meta["num_stripes"],
            element_size=meta["element_size"],
            rotate=meta["rotate"],
            journal=journal,
        )
        for disk in volume.disks:
            key = f"disk_{disk.disk_id}"
            if key not in archive:
                raise PersistenceError(f"{path}: missing {key}")
            stored = archive[key]
            if stored.shape != disk._store.shape:
                raise PersistenceError(
                    f"{path}: {key} has shape {stored.shape}, geometry "
                    f"expects {disk._store.shape}"
                )
            disk._store[:] = stored
        for disk_id, offsets in meta["bad_sectors"].items():
            disk = volume.disks[int(disk_id)]
            for offset in offsets:
                disk.mark_bad(int(offset))
        for disk_id in meta["failed"]:
            volume.disks[int(disk_id)].state = DiskState.FAILED
        if fmt == 1:
            warnings.warn(
                f"{path}: v1 archive carries no write-intent journal; "
                f"any write torn before the snapshot cannot be replayed",
                stacklevel=2,
            )
        elif journal is not None:
            # members of one group must share a single GroupFrame object:
            # recovery matches them by frame identity, not by group_seq
            frames: dict = {}
            journal.restore(
                [
                    _load_intent(archive, path, spec, frames)
                    for spec in meta["journal"]["open"]
                ],
                meta["journal"]["next_seq"],
            )
        if fmt >= 2 and "checksums" in meta:
            store = ChecksumStore(volume.element_size)
            for disk, offset, crc in meta["checksums"]:
                store._sums[(int(disk), int(offset))] = int(crc)
            volume.restored_checksums = store
        volume.extra_meta = meta.get("extra", {})
    return volume


def _load_intent(
    archive, path: Path, spec: dict, frames: Optional[dict] = None
) -> WriteIntent:
    """Rebuild one open intent from its metadata + payload array."""
    key = f"intent_{spec['seq']}"
    if key not in archive:
        raise PersistenceError(f"{path}: missing payload {key}")
    payload = archive[key]
    cells = [Cell(row, col) for row, col in spec["cells"]]
    if payload.shape[0] != len(cells):
        raise PersistenceError(
            f"{path}: {key} holds {payload.shape[0]} payload rows for "
            f"{len(cells)} cells"
        )
    group = None
    if frames is not None and "group_seq" in spec:
        gseq = int(spec["group_seq"])
        group = frames.get(gseq)
        if group is None:
            digest = spec.get("group_old_digest")
            group = GroupFrame(
                group_seq=gseq,
                size=int(spec["group_size"]),
                old_digest=None if digest is None else int(digest),
            )
            frames[gseq] = group
    return WriteIntent(
        seq=int(spec["seq"]),
        stripe=int(spec["stripe"]),
        cells=tuple(
            (cell, payload[i].copy()) for i, cell in enumerate(cells)
        ),
        old_parity_digest=spec.get("old_parity_digest"),
        new_parity_digest=spec.get("new_parity_digest"),
        group=group,
    )
