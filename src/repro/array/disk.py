"""Element-addressed simulated disk.

Backing store is a uint8 numpy array (``capacity`` elements of
``element_size`` bytes) — either privately allocated or a caller-supplied
view into a shared volume tensor (which is how
:class:`~repro.array.volume.RAID6Volume` gives stripe-aligned reads a
zero-copy path).  The disk counts every element read and write — the
integration tests and the ablation benchmarks assert against those
counters — and refuses I/O once failed, the way a dead spindle would.

Two I/O granularities are exposed:

* the per-element :meth:`read`/:meth:`write` path, which drives the fault
  hook, latent-sector and failure machinery one element at a time — the
  path every fault-injection scenario exercises;
* the vectorised :meth:`read_block`/:meth:`write_block` path, which
  serves a whole offset array in one numpy gather/scatter.  It engages
  only while the fault surface is quiet (no hook for reads and writes, no
  bad sectors for reads) and silently falls back to the per-element loop
  otherwise, so batching never changes fault semantics or hook cadence.

Counters take a lock so the parallel stripe pipeline
(:mod:`repro.array.pipeline`) does not lose increments when worker
threads hit one disk concurrently.
"""

from __future__ import annotations

import enum
import threading
from typing import Callable, Optional, Set

import numpy as np

from repro.exceptions import DiskFailedError, GeometryError, LatentSectorError
from repro.util.validation import require_index, require_positive


class DiskState(enum.Enum):
    """Lifecycle state of a simulated disk."""

    OK = "ok"
    FAILED = "failed"


class SimDisk:
    """An in-memory disk of ``capacity`` elements."""

    def __init__(
        self,
        disk_id: int,
        capacity: int,
        element_size: int,
        store: Optional[np.ndarray] = None,
    ) -> None:
        require_positive(capacity, "capacity")
        require_positive(element_size, "element_size")
        self.disk_id = disk_id
        self.capacity = capacity
        self.element_size = element_size
        self.state = DiskState.OK
        if store is None:
            store = np.zeros((capacity, element_size), dtype=np.uint8)
        elif store.shape != (capacity, element_size) or store.dtype != np.uint8:
            raise GeometryError(
                f"disk {disk_id}: backing store must be uint8 "
                f"({capacity}, {element_size}), got {store.dtype} "
                f"{store.shape}"
            )
        self._store = store
        self._bad_sectors: Set[int] = set()
        self._lock = threading.Lock()
        self.read_count = 0
        self.write_count = 0
        #: Optional fault-injection hook, called as ``hook(disk, op,
        #: offset)`` before every read/write.  The hook may raise (to fail
        #: the op) or mutate the disk (``mark_bad``/``fail``) — see
        #: :class:`repro.faults.FaultInjector`.  ``None`` disables it.
        self.fault_hook: Optional[
            Callable[["SimDisk", str, int], None]
        ] = None
        #: Optional silent-corruption hook, called as ``hook(disk,
        #: offset)`` *after* a successful per-element write lands in the
        #: store.  This is how the injector's ``silent_flip`` fault kind
        #: models corruption-on-write: the written block can be flipped
        #: on the medium with no error ever raised (see
        #: :class:`repro.faults.FaultInjector`).  ``None`` disables it.
        self.corrupt_hook: Optional[
            Callable[["SimDisk", int], None]
        ] = None

    # -- I/O --------------------------------------------------------------

    def read(self, offset: int) -> np.ndarray:
        """Read one element (copy).

        Raises :class:`LatentSectorError` when the sector was marked bad —
        the medium-error path RAID scrubbing exists to catch.
        """
        return self.read_view(offset).copy()

    def read_view(self, offset: int) -> np.ndarray:
        """Read one element as a read-only zero-copy view of the store.

        Identical fault/counter semantics to :meth:`read`; the returned
        view stays valid until the element is rewritten.
        """
        if self.fault_hook is not None:
            self.fault_hook(self, "read", offset)
        self._check_live(offset)
        with self._lock:
            self.read_count += 1
        if offset in self._bad_sectors:
            raise LatentSectorError(self.disk_id, offset)
        view = self._store[offset]
        view.flags.writeable = False
        return view

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write one element.

        A write to a bad sector remaps it (real drives reallocate on
        write), clearing the latent error.
        """
        if self.fault_hook is not None:
            self.fault_hook(self, "write", offset)
        self._check_live(offset)
        if data.shape != (self.element_size,) or data.dtype != np.uint8:
            raise GeometryError(
                f"disk {self.disk_id}: write must be uint8 of shape "
                f"({self.element_size},), got {data.dtype} {data.shape}"
            )
        self._store[offset] = data
        with self._lock:
            self.write_count += 1
            self._bad_sectors.discard(offset)
        if self.corrupt_hook is not None:
            self.corrupt_hook(self, offset)

    # -- batched I/O -------------------------------------------------------

    def read_block(self, offsets: np.ndarray) -> np.ndarray:
        """Read many elements as one ``(len(offsets), element_size)`` gather.

        With no fault hook and no bad sectors this is a single numpy
        fancy-index over the store (one counter bump for the whole
        block); otherwise it falls back to per-element :meth:`read` so
        hook cadence and error behaviour stay exactly as in the serial
        path.
        """
        offsets = np.asarray(offsets, dtype=np.intp)
        if self.fault_hook is None and not self._bad_sectors:
            self._check_live_block(offsets)
            with self._lock:
                self.read_count += int(offsets.size)
            return self._store[offsets]
        out = np.empty((len(offsets), self.element_size), dtype=np.uint8)
        for i, offset in enumerate(offsets):
            out[i] = self.read(int(offset))
        return out

    def write_block(self, offsets: np.ndarray, data: np.ndarray) -> None:
        """Write many elements in one numpy scatter.

        Engages only with no fault or corruption hook attached (bad
        sectors are fine — writes remap them, exactly as per-element
        writes do); otherwise delegates to per-element :meth:`write`
        preserving the hooks' per-op sequence.
        """
        offsets = np.asarray(offsets, dtype=np.intp)
        if data.shape != (len(offsets), self.element_size) \
                or data.dtype != np.uint8:
            raise GeometryError(
                f"disk {self.disk_id}: block write must be uint8 of shape "
                f"({len(offsets)}, {self.element_size}), got {data.dtype} "
                f"{data.shape}"
            )
        if self.fault_hook is None and self.corrupt_hook is None:
            self._check_live_block(offsets)
            self._store[offsets] = data
            with self._lock:
                self.write_count += int(offsets.size)
                if self._bad_sectors:
                    self._bad_sectors.difference_update(
                        int(o) for o in offsets
                    )
            return
        for i, offset in enumerate(offsets):
            self.write(int(offset), data[i])

    def count_reads(self, n: int) -> None:
        """Account ``n`` element reads served zero-copy by the volume layer.

        The stripe-aligned read fast path hands out direct views of the
        backing store without touching the per-element machinery; it still
        owes the load counters the accesses it served.
        """
        with self._lock:
            self.read_count += int(n)

    def count_writes(self, n: int) -> None:
        """Account ``n`` element writes performed out-of-band.

        The process-pool RMW path scatters into the shared backing store
        from worker processes (whose counter increments die with the
        child); the parent replays the deltas here so the I/O ledger
        matches the serial path exactly.
        """
        with self._lock:
            self.write_count += int(n)

    # -- latent sector errors ---------------------------------------------

    def mark_bad(self, offset: int) -> None:
        """Inject a medium error: future reads of ``offset`` fail."""
        require_index(offset, self.capacity, f"disk {self.disk_id} offset")
        with self._lock:
            self._bad_sectors.add(offset)

    @property
    def bad_sectors(self) -> frozenset:
        return frozenset(self._bad_sectors)

    # -- failure lifecycle --------------------------------------------------

    @property
    def failed(self) -> bool:
        return self.state is DiskState.FAILED

    def fail(self) -> None:
        """Mark the disk dead; its contents become unreachable."""
        self.state = DiskState.FAILED

    def replace(self) -> None:
        """Swap in a blank replacement (zeroed store, counters kept)."""
        self.state = DiskState.OK
        self._store[:] = 0
        self._bad_sectors.clear()

    def reset_counters(self) -> None:
        self.read_count = 0
        self.write_count = 0

    # -- internals ------------------------------------------------------------

    def _check_live(self, offset: int) -> None:
        if self.failed:
            raise DiskFailedError(f"disk {self.disk_id} is failed")
        require_index(offset, self.capacity, f"disk {self.disk_id} offset")

    def _check_live_block(self, offsets: np.ndarray) -> None:
        if self.failed:
            raise DiskFailedError(f"disk {self.disk_id} is failed")
        if offsets.size and (
            int(offsets.min()) < 0 or int(offsets.max()) >= self.capacity
        ):
            raise IndexError(
                f"disk {self.disk_id}: block offsets outside "
                f"[0, {self.capacity})"
            )

    def __repr__(self) -> str:
        return (
            f"<SimDisk {self.disk_id} {self.state.value} "
            f"{self.capacity}x{self.element_size}B r={self.read_count} "
            f"w={self.write_count}>"
        )
