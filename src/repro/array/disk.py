"""Element-addressed simulated disk.

Backing store is one contiguous uint8 numpy array (``capacity`` elements of
``element_size`` bytes).  The disk counts every element read and write —
the integration tests and the ablation benchmarks assert against those
counters — and refuses I/O once failed, the way a dead spindle would.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Set

import numpy as np

from repro.exceptions import DiskFailedError, GeometryError, LatentSectorError
from repro.util.validation import require_index, require_positive


class DiskState(enum.Enum):
    """Lifecycle state of a simulated disk."""

    OK = "ok"
    FAILED = "failed"


class SimDisk:
    """An in-memory disk of ``capacity`` elements."""

    def __init__(self, disk_id: int, capacity: int, element_size: int) -> None:
        require_positive(capacity, "capacity")
        require_positive(element_size, "element_size")
        self.disk_id = disk_id
        self.capacity = capacity
        self.element_size = element_size
        self.state = DiskState.OK
        self._store = np.zeros((capacity, element_size), dtype=np.uint8)
        self._bad_sectors: Set[int] = set()
        self.read_count = 0
        self.write_count = 0
        #: Optional fault-injection hook, called as ``hook(disk, op,
        #: offset)`` before every read/write.  The hook may raise (to fail
        #: the op) or mutate the disk (``mark_bad``/``fail``) — see
        #: :class:`repro.faults.FaultInjector`.  ``None`` disables it.
        self.fault_hook: Optional[
            Callable[["SimDisk", str, int], None]
        ] = None

    # -- I/O --------------------------------------------------------------

    def read(self, offset: int) -> np.ndarray:
        """Read one element (copy).

        Raises :class:`LatentSectorError` when the sector was marked bad —
        the medium-error path RAID scrubbing exists to catch.
        """
        if self.fault_hook is not None:
            self.fault_hook(self, "read", offset)
        self._check_live(offset)
        self.read_count += 1
        if offset in self._bad_sectors:
            raise LatentSectorError(self.disk_id, offset)
        return self._store[offset].copy()

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write one element.

        A write to a bad sector remaps it (real drives reallocate on
        write), clearing the latent error.
        """
        if self.fault_hook is not None:
            self.fault_hook(self, "write", offset)
        self._check_live(offset)
        if data.shape != (self.element_size,) or data.dtype != np.uint8:
            raise GeometryError(
                f"disk {self.disk_id}: write must be uint8 of shape "
                f"({self.element_size},), got {data.dtype} {data.shape}"
            )
        self.write_count += 1
        self._store[offset] = data
        self._bad_sectors.discard(offset)

    # -- latent sector errors ---------------------------------------------

    def mark_bad(self, offset: int) -> None:
        """Inject a medium error: future reads of ``offset`` fail."""
        require_index(offset, self.capacity, f"disk {self.disk_id} offset")
        self._bad_sectors.add(offset)

    @property
    def bad_sectors(self) -> frozenset:
        return frozenset(self._bad_sectors)

    # -- failure lifecycle --------------------------------------------------

    @property
    def failed(self) -> bool:
        return self.state is DiskState.FAILED

    def fail(self) -> None:
        """Mark the disk dead; its contents become unreachable."""
        self.state = DiskState.FAILED

    def replace(self) -> None:
        """Swap in a blank replacement (zeroed store, counters kept)."""
        self.state = DiskState.OK
        self._store[:] = 0
        self._bad_sectors.clear()

    def reset_counters(self) -> None:
        self.read_count = 0
        self.write_count = 0

    # -- internals ------------------------------------------------------------

    def _check_live(self, offset: int) -> None:
        if self.failed:
            raise DiskFailedError(f"disk {self.disk_id} is failed")
        require_index(offset, self.capacity, f"disk {self.disk_id} offset")

    def __repr__(self) -> str:
        return (
            f"<SimDisk {self.disk_id} {self.state.value} "
            f"{self.capacity}x{self.element_size}B r={self.read_count} "
            f"w={self.write_count}>"
        )
