"""Event-driven queueing simulation of the disk array under load.

:mod:`repro.perf.timing` prices one request on an idle array — enough for
the paper's Figures 6/7, which measure isolated request streams.  Real
arrays serve concurrent traffic, and a code's extra I/O (degraded
reconstruction reads, parity RMW) then costs twice: once in its own
service time and again as queueing delay inflicted on everyone behind it.

This module models each disk as a FIFO server: a request decomposes (via
the access engine) into per-disk element batches; a batch begins when both
the request has arrived and the disk is free; the request completes when
its last batch does.  The simulation is deterministic given the arrival
trace, so experiments are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.iosim.engine import AccessEngine
from repro.perf.diskmodel import DiskParameters, SAVVIO_10K3, disk_service_time_ms
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class ArrivingRequest:
    """One read request entering the array at ``arrival_ms``."""

    arrival_ms: float
    start: int
    length: int

    def __post_init__(self) -> None:
        require(self.arrival_ms >= 0, "arrival_ms must be >= 0")
        require(self.start >= 0, "start must be >= 0")
        require(self.length >= 1, "length must be >= 1")


@dataclass(frozen=True)
class QueueStats:
    """Aggregated outcome of a queueing run."""

    latencies_ms: Tuple[float, ...]
    makespan_ms: float
    payload_mb: float

    @property
    def mean_latency_ms(self) -> float:
        return float(np.mean(self.latencies_ms))

    @property
    def throughput_mb_per_s(self) -> float:
        if self.makespan_ms == 0:
            return 0.0
        return self.payload_mb / (self.makespan_ms / 1e3)

    def percentile_ms(self, q: float) -> float:
        """Latency percentile, ``q`` in [0, 100]."""
        require(0 <= q <= 100, f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.latencies_ms, q))


class ArrayQueueSimulator:
    """FIFO per-disk queueing over an access engine's fetch sets."""

    def __init__(
        self,
        engine: AccessEngine,
        params: DiskParameters = SAVVIO_10K3,
    ) -> None:
        self.engine = engine
        self.params = params

    def _per_disk_offsets(self, start: int, length: int) -> Dict[int, List[int]]:
        per_disk: Dict[int, List[int]] = {}
        rows = self.engine.layout.rows
        for stripe, fetched in self.engine.read_fetch_sets(start, length):
            for cell in fetched:
                disk = self.engine.physical_disk(stripe, cell.col)
                per_disk.setdefault(disk, []).append(stripe * rows + cell.row)
        return per_disk

    def run(self, requests: Sequence[ArrivingRequest]) -> QueueStats:
        """Simulate the request stream; returns latency statistics.

        Requests are served FCFS per disk in arrival order (the order of
        ``requests``, which must be sorted by arrival time).
        """
        arrivals = [r.arrival_ms for r in requests]
        require(all(b >= a for a, b in zip(arrivals, arrivals[1:])),
                "requests must be sorted by arrival time")
        disk_free: Dict[int, float] = {}
        latencies: List[float] = []
        makespan = 0.0
        payload_elements = 0
        for req in requests:
            completion = req.arrival_ms
            for disk, offsets in self._per_disk_offsets(
                req.start, req.length
            ).items():
                begin = max(req.arrival_ms, disk_free.get(disk, 0.0))
                service = disk_service_time_ms(offsets, self.params)
                done = begin + service
                disk_free[disk] = done
                completion = max(completion, done)
            latencies.append(completion - req.arrival_ms)
            makespan = max(makespan, completion)
            payload_elements += req.length
        return QueueStats(
            latencies_ms=tuple(latencies),
            makespan_ms=makespan,
            payload_mb=payload_elements * self.params.element_bytes / 1e6,
        )


def poisson_requests(
    engine: AccessEngine,
    rate_per_s: float,
    num_requests: int,
    rng: np.random.Generator,
    max_length: int = 20,
) -> List[ArrivingRequest]:
    """A Poisson arrival stream of uniform-random reads."""
    require(rate_per_s > 0, "rate must be positive")
    require_positive(num_requests, "num_requests")
    gaps_ms = rng.exponential(1e3 / rate_per_s, num_requests)
    arrivals = np.cumsum(gaps_ms)
    starts = rng.integers(0, engine.address_space, num_requests)
    lengths = rng.integers(1, max_length + 1, num_requests)
    return [
        ArrivingRequest(float(a), int(s), int(length))
        for a, s, length in zip(arrivals, starts, lengths)
    ]


def latency_under_load(
    engine: AccessEngine,
    rate_per_s: float,
    num_requests: int,
    seed: int = 0,
    params: DiskParameters = SAVVIO_10K3,
) -> QueueStats:
    """Convenience wrapper: Poisson load -> queue stats."""
    rng = np.random.default_rng(seed)
    sim = ArrayQueueSimulator(engine, params)
    return sim.run(poisson_requests(engine, rate_per_s, num_requests, rng))
