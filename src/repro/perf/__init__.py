"""Disk-array timing model — the substitute for the paper's §V testbed.

The paper measures read MB/s on a physical 16-disk array of Seagate Savvio
10K.3 drives.  Without that hardware, this package prices each request with
a classic mechanical-disk service-time model (seek + rotational settle per
non-contiguous run + media transfer) and completes a striped request when
its slowest disk finishes.  Absolute MB/s are calibration constants; the
*contrasts* between codes — how many disks share a request, how many extra
elements degraded reads drag in — are layout properties faithfully carried
over from the access engine, and they are what Figures 6 and 7 report.
"""

from repro.perf.diskmodel import DiskParameters, disk_service_time_ms
from repro.perf.timing import ArrayTimingModel
from repro.perf.experiments import (
    ReadSpeedResult,
    degraded_read_experiment,
    normal_read_experiment,
)
from repro.perf.queueing import (
    ArrayQueueSimulator,
    ArrivingRequest,
    QueueStats,
    latency_under_load,
    poisson_requests,
)

__all__ = [
    "ArrayQueueSimulator",
    "ArrayTimingModel",
    "ArrivingRequest",
    "DiskParameters",
    "QueueStats",
    "ReadSpeedResult",
    "degraded_read_experiment",
    "disk_service_time_ms",
    "latency_under_load",
    "normal_read_experiment",
    "poisson_requests",
]
