"""Mechanical-disk service-time model.

Parameters default to the paper's drive (Seagate Savvio 10K.3,
ST9300603SS: 10 kRPM, ~3.8 ms average read seek, ~120 MB/s media rate).

A disk serves the elements a request needs from it in one sweep: a single
positioning (average seek + half-rotation settle) to reach the batch, a
short head-switch penalty for every gap between non-contiguous runs inside
the batch (the elements of one striped request live within a few stripes of
each other — skipping a parity row is a track switch, not another full
seek), and media transfer for every distinct element.  The element size
defaults to 1 MiB so that transfer time and positioning time are of the
same order — the regime in which the paper's machine operates (its figures
show per-code differences of tens of percent, which positioning-dominated
service could not produce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class DiskParameters:
    """Mechanical characteristics of one drive plus the element size."""

    seek_ms: float = 3.8
    rpm: int = 10_000
    transfer_mb_per_s: float = 120.0
    element_bytes: int = 1024 * 1024
    gap_ms: float = 0.5

    def __post_init__(self) -> None:
        require(self.seek_ms >= 0, "seek_ms must be >= 0")
        require_positive(self.rpm, "rpm")
        require(self.transfer_mb_per_s > 0, "transfer rate must be positive")
        require_positive(self.element_bytes, "element_bytes")
        require(self.gap_ms >= 0, "gap_ms must be >= 0")

    @property
    def rotational_latency_ms(self) -> float:
        """Average rotational settle: half a revolution."""
        return 0.5 * 60_000.0 / self.rpm

    @property
    def positioning_ms(self) -> float:
        """Cost of reaching the first element of a batch."""
        return self.seek_ms + self.rotational_latency_ms

    @property
    def element_transfer_ms(self) -> float:
        """Media-transfer time of one element."""
        return self.element_bytes / (self.transfer_mb_per_s * 1e6) * 1e3

    def element_mb(self) -> float:
        return self.element_bytes / 1e6


#: Default drive: the paper's Savvio 10K.3.
SAVVIO_10K3 = DiskParameters()


def disk_service_time_ms(
    offsets: Sequence[int],
    params: DiskParameters = SAVVIO_10K3,
    extra_ms_per_element: float = 0.0,
) -> float:
    """Service time for one disk reading elements at the given offsets.

    Offsets are element indices on the disk (column-major within the
    volume: ``stripe * rows_per_stripe + row``).  Duplicates are served
    from cache — they cost nothing extra.  Consecutive offsets stream;
    each gap between runs costs a head-switch (``gap_ms``); the batch as a
    whole costs one positioning.

    ``extra_ms_per_element`` models a degraded ("slow") drive — media
    retries, vibration, a dying bearing — as added per-element latency;
    the fault injector exports exactly this figure per disk
    (:meth:`repro.faults.FaultInjector.slow_penalties`).
    """
    offs = np.asarray(offsets, dtype=np.int64)
    if offs.size == 0:
        return 0.0
    distinct = np.unique(offs)
    gaps = int(np.count_nonzero(np.diff(distinct) != 1))
    return (
        params.positioning_ms
        + gaps * params.gap_ms
        + int(distinct.size) * (params.element_transfer_ms
                                + extra_ms_per_element)
    )
