"""The paper's §V read-speed experiments, rebuilt on the timing model.

* Normal mode (Figure 6): 2000 requests per code, random start, random
  size in 1–20 elements.
* Degraded mode (Figure 7): for each possible single *data-carrying* disk
  failure, 200 requests with the same start/size distribution; results
  aggregate over failure cases exactly as the paper's "k different data
  disk failure cases × 200 experiments".

Both report read speed (MB/s) and the per-disk average speed the paper
introduces to compare codes with different disk counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.codes.base import CodeLayout
from repro.iosim.engine import AccessEngine
from repro.perf.diskmodel import DiskParameters, SAVVIO_10K3
from repro.perf.timing import ArrayTimingModel
from repro.util.validation import require_positive

#: The paper's request-size range (elements).
DEFAULT_MAX_LENGTH = 20
#: Requests per code in normal mode (§V-B).
DEFAULT_NORMAL_EXPERIMENTS = 2000
#: Requests per failure case in degraded mode (§V-C).
DEFAULT_DEGRADED_EXPERIMENTS = 200


@dataclass(frozen=True)
class ReadSpeedResult:
    """Aggregated outcome of a read-speed experiment for one code."""

    code: str
    p: int
    num_disks: int
    mode: str  # "normal" | "degraded"
    speed_mb_per_s: float
    speeds: tuple  # per-request speeds (or per-failure-case means)

    @property
    def average_speed_per_disk(self) -> float:
        """MB/s contributed per disk — the paper's Figures 6(b)/7(b)."""
        return self.speed_mb_per_s / self.num_disks


def _run_requests(
    model: ArrayTimingModel,
    rng: np.random.Generator,
    num_requests: int,
    max_length: int,
) -> List[float]:
    space = model.engine.address_space
    starts = rng.integers(0, space, num_requests)
    lengths = rng.integers(1, max_length + 1, num_requests)
    return [
        model.read_speed_mb_per_s(int(s), int(length))
        for s, length in zip(starts, lengths)
    ]


def normal_read_experiment(
    layout: CodeLayout,
    rng: np.random.Generator,
    num_requests: int = DEFAULT_NORMAL_EXPERIMENTS,
    max_length: int = DEFAULT_MAX_LENGTH,
    num_stripes: int = 64,
    params: DiskParameters = SAVVIO_10K3,
) -> ReadSpeedResult:
    """Figure 6: normal-mode read speed for one code."""
    require_positive(num_requests, "num_requests")
    engine = AccessEngine(layout, num_stripes=num_stripes)
    model = ArrayTimingModel(engine, params)
    speeds = _run_requests(model, rng, num_requests, max_length)
    return ReadSpeedResult(
        code=layout.name,
        p=layout.p,
        num_disks=layout.num_disks,
        mode="normal",
        speed_mb_per_s=float(np.mean(speeds)),
        speeds=tuple(speeds),
    )


def partial_write_experiment(
    layout: CodeLayout,
    rng: np.random.Generator,
    num_requests: int = DEFAULT_NORMAL_EXPERIMENTS,
    max_length: int = DEFAULT_MAX_LENGTH,
    num_stripes: int = 64,
    params: DiskParameters = SAVVIO_10K3,
) -> ReadSpeedResult:
    """Extension: partial-stripe-write speed on the timing model.

    Not a figure in the paper, but the direct performance consequence of
    its Figure-5 I/O-cost argument: fewer parity groups touched means a
    faster RMW.  Results reuse :class:`ReadSpeedResult` with
    ``mode="write"``.
    """
    require_positive(num_requests, "num_requests")
    engine = AccessEngine(layout, num_stripes=num_stripes)
    model = ArrayTimingModel(engine, params)
    starts = rng.integers(0, engine.address_space, num_requests)
    lengths = rng.integers(1, max_length + 1, num_requests)
    speeds = [
        model.write_speed_mb_per_s(int(s), int(length))
        for s, length in zip(starts, lengths)
    ]
    return ReadSpeedResult(
        code=layout.name,
        p=layout.p,
        num_disks=layout.num_disks,
        mode="write",
        speed_mb_per_s=float(np.mean(speeds)),
        speeds=tuple(speeds),
    )


def data_disk_columns(layout: CodeLayout) -> List[int]:
    """Columns that hold at least one data cell (the paper's failure cases)."""
    cols = {c.col for c in layout.data_cells}
    return sorted(cols)


def degraded_read_experiment(
    layout: CodeLayout,
    rng: np.random.Generator,
    num_requests_per_case: int = DEFAULT_DEGRADED_EXPERIMENTS,
    max_length: int = DEFAULT_MAX_LENGTH,
    num_stripes: int = 64,
    params: DiskParameters = SAVVIO_10K3,
    failure_cases: Optional[Sequence[int]] = None,
) -> ReadSpeedResult:
    """Figure 7: degraded-mode read speed, aggregated over failure cases."""
    require_positive(num_requests_per_case, "num_requests_per_case")
    cases = list(failure_cases) if failure_cases is not None \
        else data_disk_columns(layout)
    case_means: List[float] = []
    for failed in cases:
        engine = AccessEngine(
            layout, num_stripes=num_stripes, failed_disk=failed
        )
        model = ArrayTimingModel(engine, params)
        speeds = _run_requests(model, rng, num_requests_per_case, max_length)
        case_means.append(float(np.mean(speeds)))
    return ReadSpeedResult(
        code=layout.name,
        p=layout.p,
        num_disks=layout.num_disks,
        mode="degraded",
        speed_mb_per_s=float(np.mean(case_means)),
        speeds=tuple(case_means),
    )
