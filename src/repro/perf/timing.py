"""Pricing striped requests against the disk model.

A request touches several disks in parallel (the defining property RAID
read performance lives on — §V of the paper stresses that "all disks in
RAID system can be accessed in parallel"), so its completion time is the
*maximum* of the involved disks' service times, and its throughput is the
requested payload divided by that time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.codes.base import CodeLayout
from repro.iosim.engine import AccessEngine
from repro.perf.diskmodel import DiskParameters, SAVVIO_10K3, disk_service_time_ms
from repro.util.validation import require_positive


class ArrayTimingModel:
    """Times read requests for a layout on a modelled disk array.

    ``slow_disk_ms`` maps disk id → added per-element service latency,
    pricing degraded drives; pass
    :meth:`repro.faults.FaultInjector.slow_penalties` to price the exact
    slow-disk faults a chaos schedule injected.
    """

    def __init__(
        self,
        engine: AccessEngine,
        params: DiskParameters = SAVVIO_10K3,
        slow_disk_ms: Optional[Dict[int, float]] = None,
    ) -> None:
        self.engine = engine
        self.layout: CodeLayout = engine.layout
        self.params = params
        self.slow_disk_ms: Dict[int, float] = dict(slow_disk_ms or {})

    def _service_ms(self, disk: int, offsets: List[int]) -> float:
        return disk_service_time_ms(
            offsets, self.params,
            extra_ms_per_element=self.slow_disk_ms.get(disk, 0.0),
        )

    def request_time_ms(self, start: int, length: int) -> float:
        """Completion time of a read of ``length`` logical elements."""
        require_positive(length, "length")
        per_disk: Dict[int, List[int]] = {}
        for stripe, fetched in self.engine.read_fetch_sets(start, length):
            for cell in fetched:
                disk = self.engine.physical_disk(stripe, cell.col)
                offset = stripe * self.layout.rows + cell.row
                per_disk.setdefault(disk, []).append(offset)
        if not per_disk:
            return 0.0
        return max(
            self._service_ms(disk, offsets)
            for disk, offsets in per_disk.items()
        )

    def read_speed_mb_per_s(self, start: int, length: int) -> float:
        """Delivered payload rate of one read request."""
        time_ms = self.request_time_ms(start, length)
        payload_mb = length * self.params.element_bytes / 1e6
        return payload_mb / (time_ms / 1e3)

    def write_request_time_ms(self, start: int, length: int) -> float:
        """Completion time of a partial-stripe write.

        Read-modify-write is two parallel phases: fetch the old values,
        then write the new ones — the request waits for the slowest disk
        of each phase.  Full-stripe writes have an empty read phase.
        """
        require_positive(length, "length")
        read_batches: Dict[int, List[int]] = {}
        write_batches: Dict[int, List[int]] = {}
        for stripe, reads, writes in self.engine.write_io_sets(
            start, length
        ):
            for cell in reads:
                disk = self.engine.physical_disk(stripe, cell.col)
                read_batches.setdefault(disk, []).append(
                    stripe * self.layout.rows + cell.row
                )
            for cell in writes:
                disk = self.engine.physical_disk(stripe, cell.col)
                write_batches.setdefault(disk, []).append(
                    stripe * self.layout.rows + cell.row
                )
        read_ms = max(
            (self._service_ms(disk, offs)
             for disk, offs in read_batches.items()),
            default=0.0,
        )
        write_ms = max(
            (self._service_ms(disk, offs)
             for disk, offs in write_batches.items()),
            default=0.0,
        )
        return read_ms + write_ms

    def write_speed_mb_per_s(self, start: int, length: int) -> float:
        """Delivered payload rate of one partial-stripe write."""
        time_ms = self.write_request_time_ms(start, length)
        payload_mb = length * self.params.element_bytes / 1e6
        return payload_mb / (time_ms / 1e3)

    def average_speed_per_disk(self, speed_mb_per_s: float) -> float:
        """The paper's 'average read speed': MB/s divided by disk count."""
        return speed_mb_per_s / self.layout.num_disks
