"""Rebuild-window (MTTR) estimation on the disk timing model.

§III-D's hybrid recovery saves ~25 % of rebuild *reads*; what an operator
cares about is the rebuild *window* — how long the array stays exposed to
a second failure.  This module prices a whole-disk rebuild: every stripe's
recovery reads batch onto the surviving disks, the reconstructed elements
stream onto the spare, and the window is set by the busiest spindle
(surviving disks read in parallel; the spare writes everything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.codes.base import CodeLayout
from repro.perf.diskmodel import DiskParameters, SAVVIO_10K3, disk_service_time_ms
from repro.recovery.planner import (
    RecoveryPlan,
    cached_conventional_plan,
    cached_hybrid_plan,
)
from repro.util.validation import require_index, require_positive


@dataclass(frozen=True)
class RebuildEstimate:
    """Timing breakdown of one whole-disk rebuild."""

    code: str
    p: int
    failed_col: int
    num_stripes: int
    reads_total: int
    read_window_ms: float   # slowest surviving disk
    write_window_ms: float  # the spare absorbing the reconstruction
    window_ms: float        # max of the two — the exposure window

    @property
    def window_s(self) -> float:
        return self.window_ms / 1e3


def _estimate(
    layout: CodeLayout,
    plan: RecoveryPlan,
    num_stripes: int,
    params: DiskParameters,
) -> RebuildEstimate:
    bases = np.arange(num_stripes, dtype=np.int64) * layout.rows
    per_disk: Dict[int, List[np.ndarray]] = {}
    for cell in plan.reads:
        per_disk.setdefault(cell.col, []).append(bases + cell.row)
    read_window = max(
        (disk_service_time_ms(np.concatenate(chunks), params)
         for chunks in per_disk.values()),
        default=0.0,
    )
    spare_rows = np.array(
        [cell.row for cell in layout.cells_in_column(plan.failed_col)],
        dtype=np.int64,
    )
    spare_offsets = (bases[:, None] + spare_rows[None, :]).ravel()
    write_window = disk_service_time_ms(spare_offsets, params)
    return RebuildEstimate(
        code=layout.name,
        p=layout.p,
        failed_col=plan.failed_col,
        num_stripes=num_stripes,
        reads_total=plan.num_reads * num_stripes,
        read_window_ms=read_window,
        write_window_ms=write_window,
        window_ms=max(read_window, write_window),
    )


def rebuild_window(
    layout: CodeLayout,
    failed_col: int,
    num_stripes: int = 1024,
    params: DiskParameters = SAVVIO_10K3,
    strategy: str = "hybrid",
) -> RebuildEstimate:
    """Estimate the rebuild window for one failed disk.

    ``strategy`` is ``"hybrid"`` (optimal family mix) or
    ``"conventional"`` (single family).
    """
    require_index(failed_col, layout.cols, "failed_col")
    require_positive(num_stripes, "num_stripes")
    if strategy == "hybrid":
        plan = cached_hybrid_plan(layout, failed_col)
    elif strategy == "conventional":
        plan = cached_conventional_plan(layout, failed_col)
    else:
        raise ValueError(
            f"strategy must be 'hybrid' or 'conventional', got {strategy!r}"
        )
    return _estimate(layout, plan, num_stripes, params)
