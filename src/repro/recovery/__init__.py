"""Failure-recovery planning.

* :mod:`repro.recovery.planner` — single-disk-failure recovery: the
  conventional one-family plan versus the hybrid plan that mixes both
  parity families to maximise read overlap (Xu et al.'s result, which the
  paper's §III-D carries over to D-Code: ~25 % fewer disk reads).
* Double-failure chains live in :mod:`repro.codec.decoder` (the schedules
  are a by-product of chain decoding).
"""

from repro.recovery.planner import (
    RecoveryPlan,
    cached_conventional_plan,
    cached_hybrid_plan,
    conventional_plan,
    hybrid_plan,
    recovery_read_savings,
)

__all__ = [
    "RecoveryPlan",
    "cached_conventional_plan",
    "cached_hybrid_plan",
    "conventional_plan",
    "hybrid_plan",
    "recovery_read_savings",
]
