"""Single-disk-failure recovery planning.

When one disk dies, every lost *data* cell can be rebuilt from either of
the two parity groups covering it; lost *parity* cells can only be rebuilt
from their own group.  The total rebuild I/O is the number of **distinct**
surviving elements fetched — elements shared by several chosen groups are
read once.  The conventional scheme fixes one family for every cell and
ignores overlap; the hybrid scheme (Xu et al. for X-Code, §III-D of the
D-Code paper for D-Code) chooses per cell to maximise overlap, cutting
reads by roughly 25 %.

Because each lost data cell has exactly two candidate groups, the plan
space is ``2^(lost data cells)``; for the evaluation primes that is at most
``2^11``, so the planner finds the true optimum exhaustively and falls back
to randomised local search beyond a configurable budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import Cell, CodeLayout, ParityGroup
from repro.exceptions import DecodeError
from repro.util.validation import require, require_index


@dataclass(frozen=True)
class RecoveryPlan:
    """A concrete single-failure rebuild plan.

    ``choices`` maps each lost cell to the parity group used to rebuild
    it; ``reads`` is the distinct surviving cells fetched.
    """

    failed_col: int
    choices: Tuple[Tuple[Cell, ParityGroup], ...]
    reads: FrozenSet[Cell]

    @property
    def num_reads(self) -> int:
        return len(self.reads)

    def reads_on_disk(self, col: int) -> int:
        return sum(1 for c in self.reads if c.col == col)


def _candidate_groups(
    layout: CodeLayout, cell: Cell, failed_col: int
) -> List[ParityGroup]:
    """Groups that can rebuild ``cell`` with every other input surviving."""
    if layout.is_parity(cell):
        candidates = [layout.group_of_parity(cell)]
    else:
        candidates = list(layout.groups_covering(cell))
    usable = []
    for g in candidates:
        others = [c for c in g.cells if c != cell]
        if all(c.col != failed_col for c in others):
            usable.append(g)
    return usable


def _plan_from_choice(
    layout: CodeLayout,
    failed_col: int,
    lost: Sequence[Cell],
    groups: Sequence[ParityGroup],
) -> RecoveryPlan:
    reads = set()
    for cell, g in zip(lost, groups):
        reads.update(c for c in g.cells if c != cell)
    return RecoveryPlan(
        failed_col=failed_col,
        choices=tuple(zip(lost, groups)),
        reads=frozenset(reads),
    )


def conventional_plan(
    layout: CodeLayout, failed_col: int, family: Optional[str] = None
) -> RecoveryPlan:
    """Rebuild every lost cell from one fixed parity family.

    ``family`` defaults to the layout's first family (e.g. D-Code's
    horizontal parities).  Cells that family cannot rebuild — parity cells
    of the other family, or cells whose group is itself damaged — fall back
    to any usable group.
    """
    require_index(failed_col, layout.cols, "failed_col")
    fam = family if family is not None else layout.families()[0]
    require(fam in layout.families(),
            f"{layout.name} has no parity family {fam!r}")
    lost = list(layout.cells_in_column(failed_col))
    chosen: List[ParityGroup] = []
    for cell in lost:
        usable = _candidate_groups(layout, cell, failed_col)
        if not usable:
            raise DecodeError(
                f"no single-group recovery for {cell} with disk "
                f"{failed_col} failed in {layout.name}",
                unrecovered=[cell],
            )
        preferred = [g for g in usable if g.family == fam]
        chosen.append(preferred[0] if preferred else usable[0])
    return _plan_from_choice(layout, failed_col, lost, chosen)


def hybrid_plan(
    layout: CodeLayout,
    failed_col: int,
    exhaustive_limit: int = 4096,
    rng: Optional[np.random.Generator] = None,
    local_search_iterations: int = 2000,
) -> RecoveryPlan:
    """Minimise distinct reads by mixing parity families per cell.

    Exhaustive when the choice space is at most ``exhaustive_limit`` plans
    (the case for all evaluation primes), randomised first-improvement
    local search otherwise.
    """
    require_index(failed_col, layout.cols, "failed_col")
    lost = list(layout.cells_in_column(failed_col))
    options: List[List[ParityGroup]] = []
    for cell in lost:
        usable = _candidate_groups(layout, cell, failed_col)
        if not usable:
            raise DecodeError(
                f"no single-group recovery for {cell} with disk "
                f"{failed_col} failed in {layout.name}",
                unrecovered=[cell],
            )
        options.append(usable)

    free_cells = [i for i, opts in enumerate(options) if len(opts) > 1]
    space = 1
    for i in free_cells:
        space *= len(options[i])

    if space <= exhaustive_limit:
        return _exhaustive(layout, failed_col, lost, options, free_cells)
    return _local_search(
        layout, failed_col, lost, options, free_cells,
        rng if rng is not None else np.random.default_rng(0),
        local_search_iterations,
    )


def _exhaustive(layout, failed_col, lost, options, free_cells) -> RecoveryPlan:
    choice = [opts[0] for opts in options]
    best: Optional[RecoveryPlan] = None
    total = 1
    for i in free_cells:
        total *= len(options[i])
    for index in range(total):
        value = index
        for i in free_cells:
            n = len(options[i])
            choice[i] = options[i][value % n]
            value //= n
        plan = _plan_from_choice(layout, failed_col, lost, choice)
        if best is None or plan.num_reads < best.num_reads:
            best = plan
    assert best is not None
    return best


def _local_search(
    layout, failed_col, lost, options, free_cells, rng, iterations
) -> RecoveryPlan:
    choice_idx = [0] * len(options)
    current = _plan_from_choice(
        layout, failed_col, lost,
        [options[i][choice_idx[i]] for i in range(len(options))],
    )
    for _ in range(iterations):
        i = int(rng.choice(free_cells))
        old = choice_idx[i]
        choice_idx[i] = int(rng.integers(0, len(options[i])))
        if choice_idx[i] == old:
            continue
        candidate = _plan_from_choice(
            layout, failed_col, lost,
            [options[j][choice_idx[j]] for j in range(len(options))],
        )
        if candidate.num_reads <= current.num_reads:
            current = candidate
        else:
            choice_idx[i] = old
    return current


@lru_cache(maxsize=1024)
def cached_hybrid_plan(layout: CodeLayout, failed_col: int) -> RecoveryPlan:
    """Memoised :func:`hybrid_plan` for the default planner parameters.

    A plan depends only on the layout geometry and the failed column —
    never on stripe data — so re-deriving it per stripe (as the rebuild
    sweep and degraded read paths historically did) pays the exhaustive
    ``2^(lost data cells)`` search over and over for an identical result.
    Layouts hash by identity, matching
    :func:`repro.codec.plan.compiled_plans`: every consumer sharing a
    layout object (volume, decoder, access engine) shares one plan.
    """
    return hybrid_plan(layout, failed_col)


@lru_cache(maxsize=1024)
def cached_conventional_plan(
    layout: CodeLayout, failed_col: int, family: Optional[str] = None
) -> RecoveryPlan:
    """Memoised :func:`conventional_plan` (see :func:`cached_hybrid_plan`)."""
    return conventional_plan(layout, failed_col, family)


def recovery_read_savings(
    layout: CodeLayout, failed_col: int, family: Optional[str] = None
) -> float:
    """Fraction of reads the hybrid plan saves over the conventional one."""
    conv = cached_conventional_plan(layout, failed_col, family)
    hyb = cached_hybrid_plan(layout, failed_col)
    if conv.num_reads == 0:
        return 0.0
    return 1.0 - hyb.num_reads / conv.num_reads
