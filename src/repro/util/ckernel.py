"""Optional JIT-compiled C XOR kernel.

The compiled plans in :mod:`repro.codec.plan` serialise a whole schedule
(encode order or chain-recovery plan) into one flat ``int64`` program:
``[dst, k, src0 .. src{k-1}]`` per equation, in topological order.  Numpy
executes that program as vectorised gather-XOR, but each gather still
materialises a ``(n, k, element_size)`` temporary — roughly 3x the minimal
memory traffic — and each level costs a few numpy dispatches.

This module removes both overheads when a C compiler is present: a ~30-line
kernel is compiled once with the system ``cc`` into a cached shared library
and loaded via :mod:`ctypes`.  One call then runs the entire program over
one stripe — or a whole batch, stripe by stripe, keeping each stripe
cache-resident — with plain in-place ``memcpy``/XOR loops that gcc -O3
auto-vectorises.

Entirely optional: compilation failure (no compiler, read-only temp dir,
sandboxed subprocess) silently degrades to the numpy execution path, and
``REPRO_PURE_NUMPY=1`` disables the kernel outright.  No third-party
packages are involved — only ``cc`` and the standard library.

GIL contract
------------

The kernel is loaded with :class:`ctypes.CDLL`, whose foreign-call
machinery **releases the GIL for the duration of every ``xor_exec``
call** (``ctypes.PyDLL`` is the variant that would hold it — never used
here).  The parallel stripe pipeline's thread workers therefore genuinely
overlap long encode/XOR runs on multi-core hosts, with no wrapper or
callback re-entering the interpreter mid-call: the C side touches only
caller-owned buffers that stay alive and unmoved for the call (numpy
arrays pinned by the calling frame).  :func:`kernel_releases_gil` asserts
the contract so a refactor to ``PyDLL`` — which would silently serialise
the pipeline — fails tests instead of shipping.  Pure-numpy builds get
their parallelism from the ``REPRO_PROCESS_POOL`` fallback instead (see
:mod:`repro.array.pipeline`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* Fused k-way XOR: one read pass per source, one write of the
 * destination.  Fixed-arity bodies vectorise cleanly under -O3; measured
 * ~3x faster than a memcpy-then-rmw sweep per source at 4 KiB elements. */
#define S(j) (flat + srcs[(j)] * es)

static void xor2(uint8_t *restrict d, const uint8_t *a, const uint8_t *b,
                 int64_t n)
{ for (int64_t i = 0; i < n; ++i) d[i] = a[i] ^ b[i]; }

static void xor3(uint8_t *restrict d, const uint8_t *a, const uint8_t *b,
                 const uint8_t *c, int64_t n)
{ for (int64_t i = 0; i < n; ++i) d[i] = a[i] ^ b[i] ^ c[i]; }

static void xor4(uint8_t *restrict d, const uint8_t *a, const uint8_t *b,
                 const uint8_t *c, const uint8_t *e, int64_t n)
{ for (int64_t i = 0; i < n; ++i) d[i] = a[i] ^ b[i] ^ c[i] ^ e[i]; }

static void xor5(uint8_t *restrict d, const uint8_t *a, const uint8_t *b,
                 const uint8_t *c, const uint8_t *e, const uint8_t *f,
                 int64_t n)
{ for (int64_t i = 0; i < n; ++i) d[i] = a[i] ^ b[i] ^ c[i] ^ e[i] ^ f[i]; }

static void xor6(uint8_t *restrict d, const uint8_t *a, const uint8_t *b,
                 const uint8_t *c, const uint8_t *e, const uint8_t *f,
                 const uint8_t *g, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        d[i] = a[i] ^ b[i] ^ c[i] ^ e[i] ^ f[i] ^ g[i];
}

static void xor7(uint8_t *restrict d, const uint8_t *a, const uint8_t *b,
                 const uint8_t *c, const uint8_t *e, const uint8_t *f,
                 const uint8_t *g, const uint8_t *h, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        d[i] = a[i] ^ b[i] ^ c[i] ^ e[i] ^ f[i] ^ g[i] ^ h[i];
}

/* Run a serialised XOR program over `nstripes` stripes.
 *
 * base          first stripe's (num_cells * es) flat uint8 buffer
 * stripe_stride byte offset between consecutive stripes
 * es            element size in bytes
 * prog          [dst, k, src0 .. src{k-1}] per equation, topological order
 * prog_len      total int64 words in prog
 *
 * Equation semantics: cell[dst] = cell[src0] ^ ... ^ cell[src{k-1}].
 * dst never appears among its own sources (the plan compiler guarantees
 * it), so no equation reads a partially written cell.
 */
void xor_exec(uint8_t *base, int64_t nstripes, int64_t stripe_stride,
              int64_t es, const int64_t *prog, int64_t prog_len)
{
    for (int64_t s = 0; s < nstripes; ++s) {
        uint8_t *flat = base + s * stripe_stride;
        const int64_t *p = prog;
        const int64_t *end = prog + prog_len;
        while (p < end) {
            uint8_t *restrict d = flat + p[0] * es;
            int64_t k = p[1];
            const int64_t *srcs = p + 2;
            p += 2 + k;
            switch (k) {
            case 1: memcpy(d, S(0), (size_t)es); break;
            case 2: xor2(d, S(0), S(1), es); break;
            case 3: xor3(d, S(0), S(1), S(2), es); break;
            case 4: xor4(d, S(0), S(1), S(2), S(3), es); break;
            case 5: xor5(d, S(0), S(1), S(2), S(3), S(4), es); break;
            case 6: xor6(d, S(0), S(1), S(2), S(3), S(4), S(5), es); break;
            case 7: xor7(d, S(0), S(1), S(2), S(3), S(4), S(5), S(6), es);
                    break;
            default: {
                /* Wide equations: fused 7-way head, then pairwise-fused
                 * sweeps (two sources per destination pass). */
                xor7(d, S(0), S(1), S(2), S(3), S(4), S(5), S(6), es);
                int64_t j = 7;
                for (; j + 1 < k; j += 2) {
                    const uint8_t *restrict a = S(j);
                    const uint8_t *restrict b = S(j + 1);
                    for (int64_t i = 0; i < es; ++i)
                        d[i] ^= a[i] ^ b[i];
                }
                if (j < k) {
                    const uint8_t *restrict a = S(j);
                    for (int64_t i = 0; i < es; ++i)
                        d[i] ^= a[i];
                }
            }
            }
        }
    }
}
"""

_lib: Optional[ctypes.CDLL] = None
_tried = False


def xor_kernel() -> Optional[ctypes.CDLL]:
    """The loaded kernel library, or ``None`` when unavailable.

    The first call attempts a build; the outcome (library or ``None``) is
    cached for the life of the process.
    """
    global _lib, _tried
    if _tried:
        return _lib
    _tried = True
    if os.environ.get("REPRO_PURE_NUMPY"):
        return None
    try:
        _lib = _load()
    except Exception:
        _lib = None
    return _lib


def kernel_releases_gil() -> bool:
    """Whether the loaded kernel drops the GIL during ``xor_exec``.

    ``True`` exactly when a kernel is loaded through plain
    :class:`ctypes.CDLL` (GIL released around every foreign call) rather
    than :class:`ctypes.PyDLL` (GIL held).  ``False`` when no kernel is
    available at all — thread workers then rely on numpy's own
    GIL-releasing ufunc loops, or on the process-pool fallback.
    """
    lib = xor_kernel()
    return isinstance(lib, ctypes.CDLL) and not isinstance(lib, ctypes.PyDLL)


def _load() -> ctypes.CDLL:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = os.environ.get("REPRO_CKERNEL_CACHE") or os.path.join(
        tempfile.gettempdir(), f"repro-ckernel-{os.getuid()}"
    )
    os.makedirs(cache, exist_ok=True)
    so_path = os.path.join(cache, f"xor-{digest}.so")
    if not os.path.exists(so_path):
        src_path = os.path.join(cache, f"xor-{digest}.c")
        with open(src_path, "w") as fh:
            fh.write(_SOURCE)
        tmp_path = f"{so_path}.tmp.{os.getpid()}"
        cc = os.environ.get("CC", "cc")
        base_cmd = [cc, "-O3", "-std=c11", "-shared", "-fPIC"]
        try:
            # -march=native is safe: the library is built on the host at
            # runtime and never shipped.  Some toolchains reject the flag.
            subprocess.run(
                base_cmd + ["-march=native", "-o", tmp_path, src_path],
                check=True,
                capture_output=True,
            )
        except subprocess.CalledProcessError:
            subprocess.run(
                base_cmd + ["-o", tmp_path, src_path],
                check=True,
                capture_output=True,
            )
        os.replace(tmp_path, so_path)  # atomic: concurrent builders race safely
    lib = ctypes.CDLL(so_path)
    lib.xor_exec.argtypes = [
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_void_p,
        ctypes.c_int64,
    ]
    lib.xor_exec.restype = None
    return lib
