"""Vectorised XOR over element buffers.

Array codes spend essentially all of their encode/decode time XOR-ing
fixed-size element buffers together.  Following the HPC guidance for this
repo (vectorise, work in place, avoid copies), every helper here operates on
contiguous ``uint8`` numpy views and offers in-place accumulation so the
block codec never allocates inside its inner loop.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


def as_element(buf: "np.ndarray | bytes | bytearray", name: str = "buffer") -> np.ndarray:
    """Return ``buf`` as a 1-D contiguous ``uint8`` numpy view.

    Zero-copy for every accepted type: bytes-like objects are wrapped with
    :func:`np.frombuffer` directly (the result is read-only for immutable
    ``bytes``, writable — and aliasing the input — for ``bytearray`` /
    writable ``memoryview``), and uint8 numpy arrays are viewed, copied
    only when non-contiguous.  Callers that need to mutate a view of an
    immutable buffer must copy explicitly.
    """
    if isinstance(buf, np.ndarray):
        if buf.dtype != np.uint8:
            raise TypeError(f"{name} must have dtype uint8, got {buf.dtype}")
        arr = np.ascontiguousarray(buf).reshape(-1)
        return arr
    if isinstance(buf, (bytes, bytearray, memoryview)):
        return np.frombuffer(buf, dtype=np.uint8)
    raise TypeError(
        f"{name} must be bytes-like or a uint8 ndarray, got {type(buf).__name__}"
    )


def xor_blocks(blocks: Sequence[np.ndarray], out: Optional[np.ndarray] = None) -> np.ndarray:
    """XOR a sequence of equal-length uint8 blocks together.

    ``out`` (if given) receives the result in place and must not alias any
    input except ``blocks[0]``.  With no ``out``, a fresh array is returned.
    An empty sequence with ``out`` zeroes ``out``; without ``out`` it raises.
    """
    if out is None:
        if not blocks:
            raise ValueError("xor_blocks needs at least one block when out is None")
        out = blocks[0].copy()
        rest: Iterable[np.ndarray] = blocks[1:]
    else:
        if not blocks:
            out[:] = 0
            return out
        np.copyto(out, blocks[0])
        rest = blocks[1:]
    for blk in rest:
        np.bitwise_xor(out, blk, out=out)
    return out


def xor_into(dst: np.ndarray, src: np.ndarray) -> np.ndarray:
    """``dst ^= src`` in place; returns ``dst``."""
    np.bitwise_xor(dst, src, out=dst)
    return dst


def xor_accumulate(dst: np.ndarray, blocks: Iterable[np.ndarray]) -> np.ndarray:
    """XOR every block of ``blocks`` into ``dst`` in place; returns ``dst``."""
    for blk in blocks:
        np.bitwise_xor(dst, blk, out=dst)
    return dst
