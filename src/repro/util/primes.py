"""Primality helpers.

Every array code in this library is defined over a stripe whose geometry is
parameterised by a prime ``p`` (X-Code and D-Code require the disk count
itself to be prime; RDP/EVENODD/H-Code/HDP are built around a prime and add
or remove columns).  These helpers centralise the primality logic so layout
constructors can validate geometry uniformly.
"""

from __future__ import annotations

from typing import Iterator, List


def is_prime(n: int) -> bool:
    """Return ``True`` iff ``n`` is a prime number.

    Deterministic trial division — stripe primes in RAID arrays are tiny
    (tens of disks), so there is no need for probabilistic tests.
    """
    if not isinstance(n, int) or isinstance(n, bool):
        raise TypeError(f"is_prime expects an int, got {type(n).__name__}")
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def previous_prime(n: int) -> int:
    """Return the largest prime strictly smaller than ``n``.

    Raises :class:`ValueError` when no such prime exists (``n <= 2``).
    """
    candidate = n - 1
    while candidate >= 2:
        if is_prime(candidate):
            return candidate
        candidate -= 1
    raise ValueError(f"no prime smaller than {n}")


def primes_in_range(lo: int, hi: int) -> List[int]:
    """Return all primes ``q`` with ``lo <= q < hi`` in increasing order."""
    return [q for q in range(max(lo, 2), hi) if is_prime(q)]


def iter_primes(start: int = 2) -> Iterator[int]:
    """Yield primes ``>= start`` indefinitely."""
    q = start - 1
    while True:
        q = next_prime(q)
        yield q
