"""Uniform argument validation with informative error messages.

The library is a reference implementation; being loud and precise about
misuse is worth more than the nanoseconds saved by skipping checks.  Hot
inner loops (the XOR engine, the access-counting engine) validate once at
the boundary and then trust their inputs.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

from repro.util.primes import is_prime


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_type(
    value: Any, types: Union[Type, Tuple[Type, ...]], name: str
) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__}"
        )


def require_positive(value: int, name: str) -> None:
    """Raise unless ``value`` is a positive int (bools rejected)."""
    require_type(value, int, name)
    if isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")


def require_index(value: int, bound: int, name: str) -> None:
    """Raise unless ``0 <= value < bound``."""
    require_type(value, int, name)
    if not 0 <= value < bound:
        raise IndexError(f"{name} must be in [0, {bound}), got {value}")


def require_prime(value: int, name: str, minimum: int = 3) -> None:
    """Raise unless ``value`` is a prime ``>= minimum``.

    All the array codes here degenerate below p=5 (no data rows or a single
    chain), so layout constructors typically pass ``minimum=5``.
    """
    require_type(value, int, name)
    if value < minimum or not is_prime(value):
        raise ValueError(
            f"{name} must be a prime >= {minimum}, got {value!r}"
        )
