"""Shared low-level utilities: primality, argument validation, XOR engine."""

from repro.util.primes import is_prime, next_prime, previous_prime, primes_in_range
from repro.util.validation import (
    require,
    require_index,
    require_positive,
    require_prime,
    require_type,
)
from repro.util.xor import xor_accumulate, xor_blocks, xor_into

__all__ = [
    "is_prime",
    "next_prime",
    "previous_prime",
    "primes_in_range",
    "require",
    "require_index",
    "require_positive",
    "require_prime",
    "require_type",
    "xor_accumulate",
    "xor_blocks",
    "xor_into",
]
