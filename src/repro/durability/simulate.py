"""Monte-Carlo durability estimation for the registry codes.

The closed-form Markov chain in :mod:`repro.analysis.reliability` only
sees whole-disk failures.  This simulator plays out full mission
timelines — disk failures, rebuild windows, latent sector errors,
silent bit rot, periodic scrub campaigns — and scores each mission as
survived or lost, using the exact cell-granularity repair oracle of
:class:`repro.durability.model.ArrayRepairModel` to decide whether a
damaged stripe is still decodable.  That is where the codes diverge:
two dead columns plus one rotten block is fatal for some layouts and a
routine chain-repair for others.

Timeline rules (per mission, event-driven):

* each live disk fails after an exponential time with mean
  ``mtbf_hours``; a failed disk starts rebuilding immediately (one
  rebuild at a time) and returns after ``rebuild_hours``;
* point defects (latent sectors at ``latent_rate``, rotten blocks at
  ``rot_rate``, both per disk-hour) land on a uniformly random
  ``(stripe, cell)``; defects on a failed column are subsumed by the
  column loss;
* a scrub campaign every ``scrub_interval_hours`` repairs and clears
  every outstanding defect, but only while the array is fully healthy —
  mirroring :meth:`IntegrityChecker.scrub_campaign`'s precondition;
* a completed rebuild re-records its column (defects there vanish);
* data loss occurs the moment any stripe's damage pattern —
  failed columns plus its resident defects — stalls the repair oracle.

Every mission draws from one :func:`numpy.random.default_rng` stream
seeded by the caller, so a seed pins the full event sequence, loss
count, and MTTDL estimate bit-for-bit.

Estimators: mean time to data loss uses the censored-exponential MLE
``T_total / k`` with a Poisson normal-approximation CI on ``k`` (the
rule of three bounds the ``k = 0`` case); the per-mission loss
probability gets a Wilson score interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.codes.base import Cell, CodeLayout
from repro.durability.model import ArrayRepairModel
from repro.perf.diskmodel import SAVVIO_10K3, DiskParameters
from repro.perf.rebuild import rebuild_window
from repro.util.validation import require

#: Manufacturer MTBF for the paper's drive class (hours) — matches
#: :data:`repro.analysis.reliability.DEFAULT_MTBF_HOURS`.
DEFAULT_MTBF_HOURS = 1.4e6

_Z95 = 1.959963984540054  # two-sided 95 % normal quantile


@dataclass(frozen=True)
class DurabilityParams:
    """Mission profile for the Monte-Carlo timeline simulator."""

    #: Mission length per iteration (default ten years).
    mission_hours: float = 87_600.0
    mtbf_hours: float = DEFAULT_MTBF_HOURS
    #: Whole-disk rebuild window; ``None`` derives the worst-column
    #: window from :func:`repro.perf.rebuild.rebuild_window`.
    rebuild_hours: Optional[float] = None
    #: Latent sector errors per disk-hour.
    latent_rate: float = 1e-6
    #: Silent bit-rot events per disk-hour.
    rot_rate: float = 1e-6
    #: Scrub campaign cadence; ``0`` disables scrubbing.
    scrub_interval_hours: float = 168.0
    #: Stripes the defect model spreads over (smaller → more clustering
    #: → more same-stripe coincidences).
    num_stripes: int = 1024
    iterations: int = 1000
    disk_params: DiskParameters = SAVVIO_10K3

    def __post_init__(self) -> None:
        require(self.mission_hours > 0, "mission_hours must be > 0")
        require(self.mtbf_hours > 0, "mtbf_hours must be > 0")
        require(self.rebuild_hours is None or self.rebuild_hours > 0,
                "rebuild_hours must be > 0")
        require(self.latent_rate >= 0 and self.rot_rate >= 0,
                "defect rates must be >= 0")
        require(self.scrub_interval_hours >= 0,
                "scrub_interval_hours must be >= 0")
        require(self.num_stripes >= 1, "num_stripes must be >= 1")
        require(self.iterations >= 1, "iterations must be >= 1")


@dataclass(frozen=True)
class DurabilityEstimate:
    """Monte-Carlo durability verdict for one code."""

    code: str
    p: int
    num_disks: int
    iterations: int
    losses: int
    mission_hours: float
    rebuild_hours: float
    #: Total simulated operating time across every mission (hours).
    exposure_hours: float
    #: Censored-MLE mean time to data loss; ``inf`` when no mission
    #: lost data (see :attr:`mttdl_ci_hours` for the bound).
    mttdl_hours: float
    #: 95 % CI on MTTDL; with zero losses the lower bound comes from
    #: the rule of three and the upper bound is ``inf``.
    mttdl_ci_hours: Tuple[float, float]
    #: Per-mission loss probability with its Wilson 95 % interval.
    p_loss: float
    p_loss_ci: Tuple[float, float]
    #: Loss counts by proximate cause.
    causes: Dict[str, int] = field(default_factory=dict)

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_hours / (24 * 365)


def derive_rebuild_hours(
    layout: CodeLayout,
    num_stripes: int = 4096,
    params: DiskParameters = SAVVIO_10K3,
) -> float:
    """Worst-column whole-window rebuild time, in hours."""
    worst = max(
        rebuild_window(layout, col, num_stripes=num_stripes,
                       params=params).window_ms
        for col in range(layout.cols)
    )
    return worst / 1e3 / 3600.0


def wilson_interval(k: int, n: int, z: float = _Z95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion ``k / n``."""
    require(0 <= k <= n and n > 0, "need 0 <= k <= n, n > 0")
    centre = (k + z * z / 2) / (n + z * z)
    half = (z / (n + z * z)) * math.sqrt(
        k * (n - k) / n + z * z / 4
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def mttdl_from_counts(
    losses: int, exposure_hours: float, z: float = _Z95
) -> Tuple[float, Tuple[float, float]]:
    """Censored-exponential MTTDL point estimate and 95 % CI.

    ``k`` losses over total exposure ``T`` give the MLE ``T / k``.  The
    CI treats ``k`` as Poisson with a normal approximation on its rate;
    for ``k = 0`` the rule of three (``rate <= 3 / T`` at 95 %) yields a
    one-sided lower bound ``T / 3`` on the MTTDL.
    """
    require(exposure_hours > 0, "exposure_hours must be > 0")
    if losses == 0:
        return math.inf, (exposure_hours / 3.0, math.inf)
    mttdl = exposure_hours / losses
    spread = z * math.sqrt(losses)
    hi_rate = losses + spread
    lo_rate = losses - spread
    upper = (
        math.inf if lo_rate <= 0 else exposure_hours / lo_rate
    )
    return mttdl, (exposure_hours / hi_rate, upper)


class _Mission:
    """One mission timeline; returns (loss_time | None, cause)."""

    def __init__(
        self,
        model: ArrayRepairModel,
        params: DurabilityParams,
        rebuild_hours: float,
        rng: np.random.Generator,
    ) -> None:
        self.model = model
        self.params = params
        self.rebuild_hours = rebuild_hours
        self.rng = rng
        layout = model.layout
        self.cells: List[Cell] = [
            Cell(row, col)
            for row in range(layout.rows)
            for col in range(layout.cols)
        ]
        self.num_disks = layout.cols

    def run(self) -> Tuple[Optional[float], str]:
        p = self.params
        rng = self.rng
        now = 0.0
        # per-disk next spontaneous failure time
        fail_at = [
            now + float(dt)
            for dt in rng.exponential(p.mtbf_hours, self.num_disks)
        ]
        failed: List[int] = []           # columns currently dead
        rebuild_done: Optional[float] = None
        rebuild_col: Optional[int] = None
        defects: Dict[int, Set[Cell]] = {}   # stripe -> cells
        defect_rate = (p.latent_rate + p.rot_rate) * self.num_disks
        next_defect = (
            now + float(rng.exponential(1.0 / defect_rate))
            if defect_rate > 0 else math.inf
        )
        next_scrub = (
            p.scrub_interval_hours if p.scrub_interval_hours > 0
            else math.inf
        )

        while True:
            next_fail = min(
                (fail_at[d] for d in range(self.num_disks)
                 if d not in failed),
                default=math.inf,
            )
            t = min(
                next_fail,
                rebuild_done if rebuild_done is not None else math.inf,
                next_defect,
                next_scrub,
                p.mission_hours,
            )
            now = t
            if now >= p.mission_hours:
                return None, ""

            if rebuild_done is not None and t == rebuild_done:
                # rebuilt column comes back fresh and fully re-recorded
                col = rebuild_col
                failed.remove(col)
                fail_at[col] = now + float(rng.exponential(p.mtbf_hours))
                rebuild_done = rebuild_col = None
                if failed:  # next queued rebuild starts immediately
                    rebuild_col = failed[0]
                    rebuild_done = now + self.rebuild_hours
                continue

            if t == next_scrub:
                next_scrub = now + p.scrub_interval_hours
                if not failed:
                    # campaign repairs every outstanding defect — all
                    # still-repairable by construction (they were
                    # checked on arrival with no columns down)
                    defects.clear()
                continue

            if t == next_defect:
                next_defect = now + float(
                    rng.exponential(1.0 / defect_rate)
                )
                cell = self.cells[int(rng.integers(len(self.cells)))]
                if cell.col in failed:
                    continue  # subsumed by the column loss
                stripe = int(rng.integers(self.params.num_stripes))
                pool = defects.setdefault(stripe, set())
                pool.add(cell)
                if not self.model.stripe_survives(failed, pool):
                    cause = (
                        "defect_during_rebuild" if failed
                        else "defect_overflow"
                    )
                    return now, cause
                continue

            # a disk died
            col = min(
                (d for d in range(self.num_disks) if d not in failed),
                key=lambda d: fail_at[d],
            )
            failed.append(col)
            # its defects are subsumed by the whole-column erasure
            for pool in defects.values():
                discard = {c for c in pool if c.col == col}
                pool -= discard
            if rebuild_done is None:
                rebuild_col = col
                rebuild_done = now + self.rebuild_hours
            if not self.model.stripe_survives(failed):
                return now, "column_overflow"
            for stripe, pool in defects.items():
                if pool and not self.model.stripe_survives(failed, pool):
                    return now, "defect_during_rebuild"


def simulate_durability(
    layout: CodeLayout,
    params: DurabilityParams = DurabilityParams(),
    seed: int = 0,
) -> DurabilityEstimate:
    """Monte-Carlo the mission profile; fully seed-deterministic."""
    rebuild_hours = (
        params.rebuild_hours
        if params.rebuild_hours is not None
        else derive_rebuild_hours(layout, params=params.disk_params)
    )
    model = ArrayRepairModel(layout)
    rng = np.random.default_rng(seed)
    losses = 0
    exposure = 0.0
    causes: Dict[str, int] = {}
    for _ in range(params.iterations):
        loss_time, cause = _Mission(
            model, params, rebuild_hours, rng
        ).run()
        if loss_time is None:
            exposure += params.mission_hours
        else:
            losses += 1
            exposure += loss_time
            causes[cause] = causes.get(cause, 0) + 1
    mttdl, mttdl_ci = mttdl_from_counts(losses, exposure)
    return DurabilityEstimate(
        code=layout.name,
        p=layout.p,
        num_disks=layout.num_disks,
        iterations=params.iterations,
        losses=losses,
        mission_hours=params.mission_hours,
        rebuild_hours=rebuild_hours,
        exposure_hours=exposure,
        mttdl_hours=mttdl,
        mttdl_ci_hours=mttdl_ci,
        p_loss=losses / params.iterations,
        p_loss_ci=wilson_interval(losses, params.iterations),
        causes=dict(sorted(causes.items())),
    )
