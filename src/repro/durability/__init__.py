"""Durability estimation: exact repair oracle + Monte-Carlo timelines.

``repro.durability`` complements the closed-form Markov MTTDL in
:mod:`repro.analysis.reliability` with simulation at cell granularity,
where silent corruption and latent sectors actually interact with the
codes' parity-chain structure.
"""

from repro.durability.model import ArrayRepairModel
from repro.durability.simulate import (
    DEFAULT_MTBF_HOURS,
    DurabilityEstimate,
    DurabilityParams,
    derive_rebuild_hours,
    mttdl_from_counts,
    simulate_durability,
    wilson_interval,
)

__all__ = [
    "ArrayRepairModel",
    "DEFAULT_MTBF_HOURS",
    "DurabilityEstimate",
    "DurabilityParams",
    "derive_rebuild_hours",
    "mttdl_from_counts",
    "simulate_durability",
    "wilson_interval",
]
