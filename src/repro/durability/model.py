"""Cell-granularity repair-state machine for XOR array codes.

The Markov model in :mod:`repro.analysis.reliability` treats disks as
all-or-nothing; real data loss usually involves a *partial* third
erasure — a latent sector or rotten block discovered mid-rebuild.  At
that granularity the registry codes stop being interchangeable
"2-erasure" black boxes: every one of them decodes by chasing parity
chains, so whether a stripe with two dead columns plus one bad cell
survives depends on exactly *which* cell is bad and how the code's
parity groups overlap it.

:class:`ArrayRepairModel` answers that question exactly, by running the
same fixpoint the chain decoder runs: a lost cell is recoverable when
some parity group contains it and no *other* lost cell, and recovering
it may unlock further groups.  The fixpoint either drains the lost set
(repairable) or stalls (data loss).  Results are memoised per
``(failed columns, defect cells)`` pattern, which makes the Monte-Carlo
simulator's millions of queries cheap.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.codes.base import Cell, CodeLayout


class ArrayRepairModel:
    """Exact per-stripe repairability oracle for one code layout."""

    def __init__(self, layout: CodeLayout) -> None:
        self.layout = layout
        #: Parity groups as cell-sets (parity element included — losing
        #: a parity cell consumes that group's repair capacity).
        self._groups: Tuple[FrozenSet[Cell], ...] = tuple(
            frozenset(g.cells) for g in layout.groups
        )
        self._column_cells: Tuple[FrozenSet[Cell], ...] = tuple(
            frozenset(layout.cells_in_column(col))
            for col in range(layout.cols)
        )
        self._cache: Dict[
            Tuple[FrozenSet[int], FrozenSet[Cell]], bool
        ] = {}

    def is_repairable(self, lost_cells: Iterable[Cell]) -> bool:
        """Can the chain decoder drain this lost set?

        Repeatedly recovers any lost cell that is the *only* lost member
        of some parity group, until nothing is lost or no group helps.
        This is precisely the peeling decoder the chain-decodable codes
        use, so for them the verdict matches what
        :meth:`RAID6Volume.read` could actually reconstruct.

        Codes that are *not* chain-decodable (EVENODD needs its
        S-adjuster pass) still honour the RAID-6 column-MDS contract:
        any pattern confined to at most two columns is a subset of a
        two-whole-column erasure and therefore decodable.  When peeling
        stalls, that contract is the fallback — exact for
        column-confined damage, conservative for wider patterns.
        """
        lost = set(lost_cells)
        progress = True
        while lost and progress:
            progress = False
            for group in self._groups:
                damaged = lost & group
                if len(damaged) == 1:
                    lost -= damaged
                    progress = True
        if not lost:
            return True
        return len({cell.col for cell in lost}) <= 2

    def lost_set(
        self,
        failed_cols: Iterable[int],
        defects: Iterable[Cell] = (),
    ) -> FrozenSet[Cell]:
        """Cells erased by whole-column failures plus point defects."""
        lost = set()
        for col in failed_cols:
            lost |= self._column_cells[col]
        lost.update(defects)
        return frozenset(lost)

    def stripe_survives(
        self,
        failed_cols: Iterable[int],
        defects: Iterable[Cell] = (),
    ) -> bool:
        """Memoised repairability of one stripe-damage pattern."""
        key = (frozenset(failed_cols), frozenset(defects))
        hit = self._cache.get(key)
        if hit is None:
            hit = self.is_repairable(self.lost_set(*key))
            self._cache[key] = hit
        return hit

    def max_tolerable_columns(self) -> int:
        """Largest ``k`` such that *every* ``k``-column loss repairs.

        All registry codes are RAID-6, so this returns 2 — kept as an
        executable sanity check rather than an assumption.
        """
        k = 0
        cols = range(self.layout.cols)
        while k < self.layout.cols:
            if not all(
                self.stripe_survives(combo)
                for combo in combinations(cols, k + 1)
            ):
                break
            k += 1
        return k
