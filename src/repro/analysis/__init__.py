"""Analysis: the paper's §III-D feature claims and §IV/§V figure series.

:mod:`repro.analysis.features` computes storage efficiency, XOR counts and
update complexity straight from layouts; :mod:`repro.analysis.figures`
regenerates the data series behind every figure in the paper's evaluation
(the benchmark suite prints them, ``EXPERIMENTS.md`` records them).
"""

from repro.analysis.features import (
    CodeFeatures,
    code_features,
    decode_xors_per_lost_element,
    encode_xors_per_data_element,
    feature_table,
)
from repro.analysis.ascii_chart import hbar_chart, sparkline
from repro.analysis.figures import (
    fig1_footprints,
    fig4_load_balancing,
    fig5_io_cost,
    fig6_normal_read,
    fig7_degraded_read,
    single_failure_recovery_series,
)
from repro.analysis.reliability import estimate_reliability, mttdl_hours
from repro.analysis.report import generate_report
from repro.analysis.verification import verify_reproduction

__all__ = [
    "CodeFeatures",
    "code_features",
    "decode_xors_per_lost_element",
    "encode_xors_per_data_element",
    "estimate_reliability",
    "feature_table",
    "fig1_footprints",
    "fig4_load_balancing",
    "fig5_io_cost",
    "fig6_normal_read",
    "fig7_degraded_read",
    "generate_report",
    "hbar_chart",
    "mttdl_hours",
    "single_failure_recovery_series",
    "sparkline",
    "verify_reproduction",
]
