"""Regeneration harnesses for every evaluation figure in the paper.

Each function returns plain data (dict of series keyed by code name) so the
benchmark suite can both time the underlying simulation and print the
paper-style rows, and so ``EXPERIMENTS.md`` can record paper-vs-measured
values.  Workloads are seeded per code, mirroring the paper's methodology
of generating 2000 random tuples per run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.registry import EVALUATION_CODES, EVALUATION_PRIMES, make_code
from repro.iosim.engine import AccessEngine
from repro.iosim.metrics import (
    clip_lf_for_plot,
    io_cost,
    load_balancing_factor,
    run_workload,
)
from repro.iosim.workloads import (
    mixed_workload,
    read_intensive_workload,
    read_only_workload,
)
from repro.perf.diskmodel import DiskParameters, SAVVIO_10K3
from repro.perf.experiments import (
    degraded_read_experiment,
    normal_read_experiment,
)
from repro.recovery.planner import (
    cached_conventional_plan,
    cached_hybrid_plan,
)

_WORKLOAD_GENERATORS = {
    "read-only": read_only_workload,
    "read-intensive": read_intensive_workload,
    "read-write-mixed": mixed_workload,
}

#: Figure 4/5 sub-plots, in the paper's order (a), (b), (c).
WORKLOAD_NAMES: Tuple[str, ...] = tuple(_WORKLOAD_GENERATORS)


def _loads_grid(
    workload_name: str,
    primes: Sequence[int],
    codes: Sequence[str],
    seed: int,
    num_ops: int,
    num_stripes: int,
):
    """Per-(code, p) DiskLoads for one workload class."""
    gen = _WORKLOAD_GENERATORS[workload_name]
    grid = {}
    for code in codes:
        for p in primes:
            layout = make_code(code, p)
            rng = np.random.default_rng(seed)
            workload = gen(
                layout.num_data_cells * num_stripes, rng, num_ops=num_ops
            )
            grid[(code, p)] = run_workload(
                layout, workload, num_stripes=num_stripes
            )
    return grid


def fig4_load_balancing(
    workload_name: str,
    primes: Sequence[int] = EVALUATION_PRIMES,
    codes: Sequence[str] = EVALUATION_CODES,
    seed: int = 2015,
    num_ops: int = 2000,
    num_stripes: int = 64,
    clip: bool = True,
) -> Dict[str, List[float]]:
    """Figure 4 series: load-balancing factor per code over the primes.

    ``clip=True`` replaces infinity by 30 exactly as the paper plots it.
    """
    grid = _loads_grid(workload_name, primes, codes, seed, num_ops,
                       num_stripes)
    out: Dict[str, List[float]] = {}
    for code in codes:
        series = []
        for p in primes:
            lf = load_balancing_factor(grid[(code, p)])
            series.append(clip_lf_for_plot(lf) if clip else lf)
        out[code] = series
    return out


def fig5_io_cost(
    workload_name: str,
    primes: Sequence[int] = EVALUATION_PRIMES,
    codes: Sequence[str] = EVALUATION_CODES,
    seed: int = 2015,
    num_ops: int = 2000,
    num_stripes: int = 64,
) -> Dict[str, List[int]]:
    """Figure 5 series: total I/O cost per code over the primes."""
    grid = _loads_grid(workload_name, primes, codes, seed, num_ops,
                       num_stripes)
    return {
        code: [io_cost(grid[(code, p)]) for p in primes] for code in codes
    }


def fig6_normal_read(
    primes: Sequence[int] = EVALUATION_PRIMES,
    codes: Sequence[str] = EVALUATION_CODES,
    seed: int = 2015,
    num_requests: int = 2000,
    num_stripes: int = 64,
    params: DiskParameters = SAVVIO_10K3,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 6 series: normal read speed (a) and per-disk average (b)."""
    speed: Dict[str, List[float]] = {}
    average: Dict[str, List[float]] = {}
    for code in codes:
        speed[code], average[code] = [], []
        for p in primes:
            layout = make_code(code, p)
            result = normal_read_experiment(
                layout,
                np.random.default_rng(seed),
                num_requests=num_requests,
                num_stripes=num_stripes,
                params=params,
            )
            speed[code].append(result.speed_mb_per_s)
            average[code].append(result.average_speed_per_disk)
    return {"speed": speed, "average": average}


def fig7_degraded_read(
    primes: Sequence[int] = EVALUATION_PRIMES,
    codes: Sequence[str] = EVALUATION_CODES,
    seed: int = 2015,
    num_requests_per_case: int = 200,
    num_stripes: int = 64,
    params: DiskParameters = SAVVIO_10K3,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 7 series: degraded read speed (a) and per-disk average (b)."""
    speed: Dict[str, List[float]] = {}
    average: Dict[str, List[float]] = {}
    for code in codes:
        speed[code], average[code] = [], []
        for p in primes:
            layout = make_code(code, p)
            result = degraded_read_experiment(
                layout,
                np.random.default_rng(seed),
                num_requests_per_case=num_requests_per_case,
                num_stripes=num_stripes,
                params=params,
            )
            speed[code].append(result.speed_mb_per_s)
            average[code].append(result.average_speed_per_disk)
    return {"speed": speed, "average": average}


def fig1_footprints(
    p: int = 7,
    codes: Sequence[str] = ("rdp", "xcode", "dcode"),
    length: int = 4,
    starts: Optional[Sequence[int]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 1-style element footprints at one prime.

    For reads of ``length`` continuous elements from every possible start,
    report the average number of elements fetched on a degraded read (worst
    failed disk averaged over cases) and the average number of element
    accesses for a partial-stripe write.  The paper's Figure 1 draws single
    examples; averaging over all starts makes the comparison robust while
    preserving its point (D-Code's shared horizontal parities shrink both
    footprints relative to X-Code).
    """
    out: Dict[str, Dict[str, float]] = {}
    for code in codes:
        layout = make_code(code, p)
        engine_normal = AccessEngine(layout, num_stripes=8)
        space = (
            layout.num_data_cells
            if starts is None
            else max(starts) + 1
        )
        use_starts = range(layout.num_data_cells) if starts is None else starts
        # degraded read footprint, averaged over data-disk failure cases
        data_cols = sorted({c.col for c in layout.data_cells})
        degraded_total = 0
        degraded_n = 0
        for failed in data_cols:
            engine = AccessEngine(layout, num_stripes=8, failed_disk=failed)
            for s in use_starts:
                degraded_total += engine.read_accesses(s, length).cost
                degraded_n += 1
        # partial-stripe write footprint
        write_total = 0
        write_n = 0
        for s in use_starts:
            write_total += engine_normal.write_accesses(s, length).cost
            write_n += 1
        out[code] = {
            "degraded_read_elements": degraded_total / degraded_n,
            "partial_write_accesses": write_total / write_n,
            "read_payload_elements": float(length),
        }
    return out


def single_failure_recovery_series(
    primes: Sequence[int] = EVALUATION_PRIMES,
    codes: Sequence[str] = ("xcode", "dcode"),
) -> Dict[str, List[Dict[str, float]]]:
    """§III-D claim: hybrid recovery reads vs conventional, per prime.

    Savings are averaged over every failure case of each layout.
    """
    out: Dict[str, List[Dict[str, float]]] = {}
    for code in codes:
        rows = []
        for p in primes:
            layout = make_code(code, p)
            conv = hyb = 0
            for failed in range(layout.cols):
                conv += cached_conventional_plan(layout, failed).num_reads
                hyb += cached_hybrid_plan(layout, failed).num_reads
            rows.append(
                {
                    "p": p,
                    "conventional_reads": conv / layout.cols,
                    "hybrid_reads": hyb / layout.cols,
                    "savings": 1.0 - hyb / conv,
                }
            )
        out[code] = rows
    return out
