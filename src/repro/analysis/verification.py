"""One-call correctness audit of the reproduction.

``verify_reproduction()`` re-establishes, from scratch, every formal
property the reproduction rests on — the same checks the test-suite runs,
packaged for a user who wants a single self-check after installing:

1. every registered code is MDS at every evaluation prime (exhaustive
   double-erasure rank checks);
2. D-Code's three constructions coincide (Theorem 1 made executable);
3. the §III-D optimality claims hold exactly;
4. a data-backed encode → erase → decode round trip per code.

Exposed on the CLI as ``python -m repro verify``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.codes.dcode import DCode
from repro.codes.registry import (
    EVALUATION_PRIMES,
    available_codes,
    make_code,
)
from repro.codec.decoder import ChainDecoder
from repro.codec.encoder import StripeCodec
from repro.codec.gauss import GaussianDecoder, can_recover
from repro.codec.update import update_footprint
from repro.analysis.features import (
    decode_xors_per_lost_element,
    encode_xors_per_data_element,
)


@dataclass
class VerificationResult:
    """Outcome of one named check."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """All checks plus an overall verdict."""

    results: List[VerificationResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.passed for r in self.results)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        self.results.append(VerificationResult(name, passed, detail))

    def render(self) -> str:
        lines = []
        for r in self.results:
            mark = "PASS" if r.passed else "FAIL"
            suffix = f" — {r.detail}" if r.detail else ""
            lines.append(f"[{mark}] {r.name}{suffix}")
        lines.append(
            f"overall: {'OK' if self.ok else 'FAILED'} "
            f"({sum(r.passed for r in self.results)}/{len(self.results)})"
        )
        return "\n".join(lines)


def _group_signature(layout):
    return sorted(
        (g.parity, g.family, tuple(sorted(g.members)))
        for g in layout.groups
    )


def verify_reproduction(
    primes=EVALUATION_PRIMES, seed: int = 0
) -> VerificationReport:
    """Run the full audit; see the module docstring for the check list."""
    report = VerificationReport()
    rng = np.random.default_rng(seed)

    # 1. MDS, exhaustively
    for name in available_codes():
        for p in primes:
            layout = make_code(name, p)
            bad = [
                pair
                for pair in itertools.combinations(range(layout.cols), 2)
                if not can_recover(layout, list(pair))
            ]
            report.add(
                f"MDS {name} p={p}",
                not bad,
                f"{len(bad)} unrecoverable pairs" if bad else
                f"all {layout.cols * (layout.cols - 1) // 2} pairs",
            )

    # 2. Theorem 1
    for n in primes:
        sigs = {
            c: _group_signature(DCode(n, c)) for c in DCode.CONSTRUCTIONS
        }
        identical = len({str(s) for s in sigs.values()}) == 1
        report.add(f"D-Code constructions agree n={n}", identical)

    # 3. §III-D optimality
    for n in primes:
        layout = DCode(n)
        enc = encode_xors_per_data_element(layout)
        dec = decode_xors_per_lost_element(layout)
        upd = {len(update_footprint(layout, c)) for c in layout.data_cells}
        report.add(
            f"D-Code optimality n={n}",
            abs(enc - (2 - 2 / (n - 2))) < 1e-12
            and abs(dec - (n - 3)) < 1e-12
            and upd == {2},
            f"enc={enc:.4f} dec={dec:.1f} upd={sorted(upd)}",
        )

    # 4. data-backed round trip (one random failure pair per code)
    for name in available_codes():
        layout = make_code(name, primes[0])
        codec = StripeCodec(layout, element_size=32)
        truth = codec.random_stripe(rng)
        pair = sorted(
            rng.choice(layout.cols, size=2, replace=False).tolist()
        )
        stripe = truth.copy()
        codec.erase_columns(stripe, pair)
        decoder = (
            ChainDecoder(codec)
            if layout.chain_decodable
            else GaussianDecoder(codec)
        )
        decoder.decode_columns(stripe, pair)
        report.add(
            f"round trip {name} (disks {pair})",
            bool(np.array_equal(stripe, truth)),
        )

    return report
