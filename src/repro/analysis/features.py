"""The paper's §III-D representative features, computed from layouts.

For each code: storage efficiency, encoding XORs per data element (the MDS
optimum is ``2 - 2/(n-2)`` in the paper's notation), decoding XORs per lost
element under double failure (optimum ``n - 3``), and update complexity
(optimum exactly 2 parity updates per data write).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.codes.base import CodeLayout, column_failure_cells
from repro.codes.registry import make_code
from repro.codec.decoder import plan_chain_recovery
from repro.codec.update import average_update_complexity, update_footprint


def encode_xors_per_data_element(layout: CodeLayout) -> float:
    """XOR operations to encode a stripe, per data element.

    A parity over ``m`` members costs ``m - 1`` XORs.
    """
    total = sum(len(g.members) - 1 for g in layout.groups)
    return total / layout.num_data_cells


def decode_xors_per_lost_element(layout: CodeLayout) -> float:
    """Average XORs per lost element over all double-disk failures.

    Each chain step rebuilding a cell from a group of ``m`` cells costs
    ``m - 2`` XORs (XOR of ``m - 1`` known cells).  Codes that are not
    chain decodable (EVENODD) are skipped by returning ``nan``.
    """
    if not layout.chain_decodable:
        return float("nan")
    total_xors = 0
    total_lost = 0
    for f1 in range(layout.cols):
        for f2 in range(f1 + 1, layout.cols):
            lost = column_failure_cells(layout, (f1, f2))
            plan = plan_chain_recovery(layout, lost)
            assert plan is not None, (layout.name, f1, f2)
            total_xors += sum(len(s.group.cells) - 2 for s in plan)
            total_lost += len(lost)
    return total_xors / total_lost


def max_update_complexity(layout: CodeLayout) -> int:
    """Worst-case parity writes for a single data-element update."""
    return max(len(update_footprint(layout, c)) for c in layout.data_cells)


@dataclass(frozen=True)
class CodeFeatures:
    """One row of the feature table."""

    code: str
    p: int
    num_disks: int
    data_elements: int
    parity_elements: int
    storage_efficiency: float
    encode_xors_per_element: float
    optimal_encode_xors: float
    decode_xors_per_lost: float
    optimal_decode_xors: float
    avg_update_complexity: float
    max_update_complexity: int


def code_features(layout: CodeLayout) -> CodeFeatures:
    """Compute every §III-D feature for one layout.

    The optimal encode/decode columns use the paper's formulas with the
    layout's own defining prime: ``2 - 2/(p-2)`` XORs per data element and
    ``p - 3`` XORs per lost element (these are the RAID-6 MDS lower bounds
    for a p-column vertical stripe; horizontal codes have their own
    constants but the same columns let the table be compared at a glance).
    """
    p = layout.p
    return CodeFeatures(
        code=layout.name,
        p=p,
        num_disks=layout.num_disks,
        data_elements=layout.num_data_cells,
        parity_elements=layout.num_parity_cells,
        storage_efficiency=layout.storage_efficiency,
        encode_xors_per_element=encode_xors_per_data_element(layout),
        optimal_encode_xors=2.0 - 2.0 / (p - 2),
        decode_xors_per_lost=decode_xors_per_lost_element(layout),
        optimal_decode_xors=float(p - 3),
        avg_update_complexity=average_update_complexity(layout),
        max_update_complexity=max_update_complexity(layout),
    )


def feature_table(
    codes: Sequence[str], primes: Iterable[int]
) -> List[CodeFeatures]:
    """Feature rows for every (code, prime) combination."""
    return [code_features(make_code(c, p)) for c in codes for p in primes]


def format_feature_table(rows: Sequence[CodeFeatures]) -> str:
    """Plain-text rendering used by the bench harness and examples."""
    header = (
        f"{'code':<8}{'p':>4}{'disks':>7}{'data':>7}{'parity':>8}"
        f"{'eff':>8}{'enc/el':>9}{'enc*':>8}{'dec/el':>9}{'dec*':>7}"
        f"{'upd':>7}{'updmax':>8}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"{r.code:<8}{r.p:>4}{r.num_disks:>7}{r.data_elements:>7}"
            f"{r.parity_elements:>8}{r.storage_efficiency:>8.4f}"
            f"{r.encode_xors_per_element:>9.4f}{r.optimal_encode_xors:>8.4f}"
            f"{r.decode_xors_per_lost:>9.4f}{r.optimal_decode_xors:>7.1f}"
            f"{r.avg_update_complexity:>7.3f}{r.max_update_complexity:>8}"
        )
    return "\n".join(lines)
