"""MTTDL estimation — what the rebuild window buys in reliability.

The standard Markov model for RAID-6 reliability: with ``n`` disks of
exponential failure rate ``λ = 1/MTBF`` and repair rate ``μ = 1/MTTR``,
the array walks states 0 → 1 → 2 failed disks (repairs pull back toward
0) and dies on a third concurrent failure.  The well-known closed form
(for ``μ ≫ λ``, the operating regime) is

.. math::

    MTTDL \\approx \\frac{\\mu^2}{n (n-1) (n-2)\\, \\lambda^3}

so halving the rebuild window quadruples survival — which is how the
hybrid recovery planner's ~20 % read saving (§III-D) compounds into a
~50 % MTTDL gain.  This module evaluates the exact 3-state Markov chain
(no large-``μ`` approximation) with per-code rebuild windows from
:mod:`repro.perf.rebuild`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.base import CodeLayout
from repro.perf.diskmodel import DiskParameters, SAVVIO_10K3
from repro.perf.rebuild import rebuild_window
from repro.util.validation import require

#: Manufacturer-style MTBF for the paper's drive class (hours).
DEFAULT_MTBF_HOURS = 1.4e6


@dataclass(frozen=True)
class ReliabilityEstimate:
    """MTTDL of one code under one repair strategy."""

    code: str
    p: int
    num_disks: int
    strategy: str
    rebuild_hours: float
    mttdl_hours: float

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_hours / (24 * 365)


def mttdl_hours(n: int, mtbf_hours: float, mttr_hours: float) -> float:
    """Exact mean time to data loss of the 3-state RAID-6 Markov chain.

    States: 0, 1, 2 concurrent failures; absorbing at 3.  Transition
    rates: ``i`` failed → ``i+1`` failed at ``(n - i) λ``; repair returns
    ``i → i-1`` at ``μ`` (one rebuild at a time).  The expected absorption
    time from state 0 solves the linear system of hitting times.
    """
    require(n >= 3, f"need at least 3 disks for a third failure, got {n}")
    require(mtbf_hours > 0 and mttr_hours > 0, "rates must be positive")
    lam = 1.0 / mtbf_hours
    mu = 1.0 / mttr_hours
    f0 = n * lam
    f1 = (n - 1) * lam
    f2 = (n - 2) * lam
    # hitting times t_i from state i to absorption satisfy
    #   t2 = 1/(f2+mu) + mu/(f2+mu) t1
    #   t1 = 1/(f1+mu) + f1/(f1+mu) t2 + mu/(f1+mu) t0
    #   t0 = 1/f0 + t1
    # solved symbolically (stable for mu >> lambda, where the matrix form
    # is hopelessly ill-conditioned):
    t2 = (1.0 + mu * (f0 + mu) / (f0 * f1)) / f2
    t1 = (f0 + mu) / (f0 * f1) + t2
    t0 = 1.0 / f0 + t1
    return float(t0)


def estimate_reliability(
    layout: CodeLayout,
    strategy: str = "hybrid",
    mtbf_hours: float = DEFAULT_MTBF_HOURS,
    num_stripes: int = 4096,
    params: DiskParameters = SAVVIO_10K3,
    bottleneck: str = "reads",
) -> ReliabilityEstimate:
    """MTTDL for a layout, using its worst-case rebuild window as MTTR.

    ``bottleneck`` selects the repair-time model: ``"reads"`` (default)
    takes the read-side window — the quantity recovery *planning* can
    shrink, and the binding constraint on declustered/spare-space layouts
    where reconstruction writes spread over many disks; ``"array"`` takes
    the full window including the single dedicated spare's write stream,
    which is strategy-independent (every byte of the dead disk must be
    rewritten) and dominates on a classic one-spare rebuild.
    """
    require(bottleneck in ("reads", "array"),
            f"bottleneck must be 'reads' or 'array', got {bottleneck!r}")
    windows = []
    for col in range(layout.cols):
        est = rebuild_window(layout, col, num_stripes=num_stripes,
                             params=params, strategy=strategy)
        windows.append(
            est.read_window_ms if bottleneck == "reads" else est.window_ms
        )
    mttr_hours = max(windows) / 1e3 / 3600.0
    return ReliabilityEstimate(
        code=layout.name,
        p=layout.p,
        num_disks=layout.num_disks,
        strategy=strategy,
        rebuild_hours=mttr_hours,
        mttdl_hours=mttdl_hours(layout.num_disks, mtbf_hours, mttr_hours),
    )
