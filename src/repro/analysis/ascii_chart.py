"""Terminal-friendly chart rendering for the figure series.

The paper's figures are grouped bar charts; for a text-only reproduction
the closest faithful form is a horizontal bar chart per prime, one bar per
code, scaled to a fixed width.  Used by the CLI (``--chart``) and the
report generator; pure string manipulation, no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.util.validation import require, require_positive

BAR_CHAR = "█"


def hbar_chart(
    title: str,
    series: Dict[str, Sequence[float]],
    primes: Sequence[int],
    width: int = 48,
    value_format: str = "{:.2f}",
) -> str:
    """Render ``{code: [value per prime]}`` as grouped horizontal bars.

    Bars share one scale across the whole chart so groups are visually
    comparable — exactly like the paper's shared y-axes.
    """
    require_positive(width, "width")
    require(len(series) > 0, "series must not be empty")
    for code, values in series.items():
        require(len(values) == len(primes),
                f"series {code!r} length != number of primes")
    peak = max(max(values) for values in series.values())
    require(peak >= 0, "values must be non-negative")
    label_w = max(len(code) for code in series)

    lines: List[str] = [title]
    for i, p in enumerate(primes):
        lines.append(f"p={p}")
        for code, values in series.items():
            value = values[i]
            filled = 0 if peak == 0 else round(width * value / peak)
            bar = BAR_CHAR * filled
            lines.append(
                f"  {code:<{label_w}} |{bar:<{width}}| "
                + value_format.format(value)
            )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend: the classic eight-level block sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)
