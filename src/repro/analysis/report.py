"""One-shot reproduction report.

``generate_report`` runs every experiment harness (at configurable sizes)
and renders a single markdown document with all the paper-style tables —
the programmatic counterpart of ``EXPERIMENTS.md``.  The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.features import feature_table, format_feature_table
from repro.analysis.figures import (
    WORKLOAD_NAMES,
    fig1_footprints,
    fig4_load_balancing,
    fig5_io_cost,
    fig6_normal_read,
    fig7_degraded_read,
    single_failure_recovery_series,
)
from repro.codes.registry import EVALUATION_CODES, EVALUATION_PRIMES


def _md_series(primes: Sequence[int], series: Dict[str, list],
               fmt: str = "{:.2f}") -> List[str]:
    header = "| code | " + " | ".join(f"p={p}" for p in primes) + " |"
    rule = "|---" * (len(primes) + 1) + "|"
    lines = [header, rule]
    for code, values in series.items():
        cells = " | ".join(
            fmt.format(v) if isinstance(v, float) else str(v)
            for v in values
        )
        lines.append(f"| {code} | {cells} |")
    return lines


def generate_report(
    primes: Sequence[int] = EVALUATION_PRIMES,
    codes: Sequence[str] = EVALUATION_CODES,
    num_ops: int = 2000,
    num_requests: int = 2000,
    num_requests_per_case: int = 200,
    seed: int = 2015,
) -> str:
    """Run every harness and return the markdown report."""
    out: List[str] = [
        "# D-Code reproduction report",
        "",
        f"codes: {', '.join(codes)} — primes: "
        f"{', '.join(str(p) for p in primes)} — seed {seed}",
        "",
        "## §III-D feature table",
        "",
        "```",
        format_feature_table(feature_table(list(codes) + ["evenodd"],
                                           primes)),
        "```",
        "",
    ]

    for workload in WORKLOAD_NAMES:
        lf = fig4_load_balancing(workload, primes=primes, codes=codes,
                                 seed=seed, num_ops=num_ops)
        out += [f"## Figure 4 ({workload}): load balancing factor", ""]
        out += _md_series(primes, lf)
        out.append("")

    for workload in WORKLOAD_NAMES:
        cost = fig5_io_cost(workload, primes=primes, codes=codes,
                            seed=seed, num_ops=num_ops)
        out += [f"## Figure 5 ({workload}): total I/O cost", ""]
        out += _md_series(primes, cost, fmt="{:d}")
        out.append("")

    fig6 = fig6_normal_read(primes=primes, codes=codes, seed=seed,
                            num_requests=num_requests)
    out += ["## Figure 6(a): normal read speed (model MB/s)", ""]
    out += _md_series(primes, fig6["speed"])
    out += ["", "## Figure 6(b): average per disk (model MB/s)", ""]
    out += _md_series(primes, fig6["average"])
    out.append("")

    fig7 = fig7_degraded_read(
        primes=primes, codes=codes, seed=seed,
        num_requests_per_case=num_requests_per_case,
    )
    out += ["## Figure 7(a): degraded read speed (model MB/s)", ""]
    out += _md_series(primes, fig7["speed"])
    out += ["", "## Figure 7(b): average per disk (model MB/s)", ""]
    out += _md_series(primes, fig7["average"])
    out.append("")

    foot = fig1_footprints(p=7, length=4)
    out += [
        "## Figure 1 footprints (p=7, 4-element ops)",
        "",
        "| code | degraded-read elements | partial-write accesses |",
        "|---|---|---|",
    ]
    for code, entry in foot.items():
        out.append(
            f"| {code} | {entry['degraded_read_elements']:.2f} | "
            f"{entry['partial_write_accesses']:.2f} |"
        )
    out.append("")

    recovery = single_failure_recovery_series(primes=primes)
    out += [
        "## Single-failure recovery (hybrid vs conventional reads)",
        "",
        "| code | p | conventional | hybrid | saved |",
        "|---|---|---|---|---|",
    ]
    for code, rows in recovery.items():
        for row in rows:
            out.append(
                f"| {code} | {row['p']} | "
                f"{row['conventional_reads']:.1f} | "
                f"{row['hybrid_reads']:.1f} | {row['savings']:.1%} |"
            )
    out.append("")
    return "\n".join(out)
