"""Distribution statistics over per-disk loads.

The paper's LF (max/min) is sensitive only to the two extreme disks; for
the extended analyses this module adds whole-distribution measures:

* **Gini coefficient** — 0 for perfect balance, →1 as load concentrates;
* **coefficient of variation** — std/mean, the classic dispersion measure;
* a per-disk share breakdown for tables and charts.

These don't replace LF (the figures reproduce the paper's metric); they
corroborate it: a code that looks balanced under LF and unbalanced under
Gini would be suspicious, and the test-suite checks the measures agree in
ranking on the paper's workloads.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.iosim.engine import DiskLoads
from repro.util.validation import require


def gini_coefficient(loads: DiskLoads) -> float:
    """Gini coefficient of total per-disk accesses (0 = perfect balance)."""
    totals = np.sort(loads.total.astype(np.float64))
    n = totals.size
    require(n > 0, "need at least one disk")
    s = totals.sum()
    if s == 0:
        return 0.0
    # mean absolute difference formulation via the sorted cumulative sum
    index = np.arange(1, n + 1)
    return float((2 * (index * totals).sum() - (n + 1) * s) / (n * s))


def coefficient_of_variation(loads: DiskLoads) -> float:
    """std/mean of total per-disk accesses (0 = perfect balance)."""
    totals = loads.total.astype(np.float64)
    mean = totals.mean()
    if mean == 0:
        return 0.0
    return float(totals.std() / mean)


def load_shares(loads: DiskLoads) -> List[float]:
    """Each disk's fraction of total accesses."""
    totals = loads.total.astype(np.float64)
    s = totals.sum()
    if s == 0:
        return [0.0] * totals.size
    return list(totals / s)


def role_load_breakdown(layout, loads: DiskLoads) -> Dict[str, float]:
    """Average per-disk load by disk role: pure-data / mixed / pure-parity.

    Quantifies the paper's §II-A observation directly: in horizontal
    codes the dedicated parity disks absorb a disproportionate share of
    the write traffic while contributing nothing to reads.  Roles with no
    disks report 0.
    """
    totals = loads.total
    buckets: Dict[str, List[float]] = {"data": [], "mixed": [], "parity": []}
    for col in range(layout.cols):
        cells = layout.cells_in_column(col)
        has_data = any(layout.is_data(c) for c in cells)
        has_parity = any(layout.is_parity(c) for c in cells)
        if has_data and has_parity:
            role = "mixed"
        elif has_parity:
            role = "parity"
        else:
            role = "data"
        buckets[role].append(float(totals[col]))
    return {
        role: (sum(values) / len(values) if values else 0.0)
        for role, values in buckets.items()
    }


def balance_summary(loads: DiskLoads) -> Dict[str, float]:
    """All balance measures in one dict (for reports)."""
    from repro.iosim.metrics import load_balancing_factor

    return {
        "lf": load_balancing_factor(loads),
        "gini": gini_coefficient(loads),
        "cv": coefficient_of_variation(loads),
    }
