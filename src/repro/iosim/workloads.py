"""Workload generators for the paper's three §IV-A traffic mixes.

Every generator draws the paper's published distributions — 2000 operations
per workload, start ``S`` uniform over the logical space, length ``L``
uniform in ``[1, 20]`` elements, repeat count ``T`` uniform in
``[1, 1000]`` — from a seeded :class:`numpy.random.Generator`, so a given
seed replays the identical operation stream against every code (the paper
runs the *same* workload through each layout; anything else would compare
noise).

* read-only — cloud-storage style, reads only;
* read-intensive — SSD-array style, reads:writes = 7:3;
* read-write evenly mixed — file-system style, 1:1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.iosim.request import Operation, ReadOp, WriteOp
from repro.util.validation import require, require_positive

#: The paper's published operation-count and parameter ranges (§IV-A).
DEFAULT_NUM_OPS = 2000
DEFAULT_MAX_LENGTH = 20
DEFAULT_MAX_TIMES = 1000


@dataclass(frozen=True)
class Workload:
    """A named, replayable operation stream."""

    name: str
    operations: Tuple[Operation, ...]
    read_fraction: float

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def num_reads(self) -> int:
        return sum(1 for op in self.operations if op.is_read)

    @property
    def num_writes(self) -> int:
        return len(self.operations) - self.num_reads

    def total_elements(self) -> int:
        """Logical elements addressed across all ops, counting repeats."""
        return sum(op.elements_touched for op in self.operations)


def workload_from_ratio(
    name: str,
    read_fraction: float,
    address_space: int,
    rng: np.random.Generator,
    num_ops: int = DEFAULT_NUM_OPS,
    max_length: int = DEFAULT_MAX_LENGTH,
    max_times: int = DEFAULT_MAX_TIMES,
) -> Workload:
    """Generate ``num_ops`` random ``<S, L, T>`` ops with the given read mix.

    ``address_space`` is the number of logical data elements addressable
    (ops may start anywhere in it; lengths running past the end wrap into
    subsequent stripes via the engine's modulo addressing, mirroring the
    paper's "S may be an arbitrary element of the stripe").
    """
    require(0.0 <= read_fraction <= 1.0,
            f"read_fraction must be in [0, 1], got {read_fraction}")
    require_positive(address_space, "address_space")
    require_positive(num_ops, "num_ops")
    require_positive(max_length, "max_length")
    require_positive(max_times, "max_times")

    starts = rng.integers(0, address_space, num_ops)
    lengths = rng.integers(1, max_length + 1, num_ops)
    times = rng.integers(1, max_times + 1, num_ops)
    is_read = rng.random(num_ops) < read_fraction

    ops: List[Operation] = []
    for s, length, t, r in zip(starts, lengths, times, is_read):
        ctor = ReadOp if r else WriteOp
        ops.append(ctor(int(s), int(length), int(t)))
    return Workload(name=name, operations=tuple(ops),
                    read_fraction=read_fraction)


def read_only_workload(
    address_space: int, rng: np.random.Generator, **kwargs
) -> Workload:
    """The paper's Read-Only Workload (cloud storage systems)."""
    return workload_from_ratio("read-only", 1.0, address_space, rng, **kwargs)


def read_intensive_workload(
    address_space: int, rng: np.random.Generator, **kwargs
) -> Workload:
    """The paper's Read-Intensive Workload (SSD arrays), reads:writes = 7:3."""
    return workload_from_ratio("read-intensive", 0.7, address_space, rng,
                               **kwargs)


def mixed_workload(
    address_space: int, rng: np.random.Generator, **kwargs
) -> Workload:
    """The paper's Read-Write Evenly Mixed Workload (file systems), 1:1."""
    return workload_from_ratio("read-write-mixed", 0.5, address_space, rng,
                               **kwargs)


#: Generator per paper workload name, in the paper's presentation order.
PAPER_WORKLOADS = (
    ("read-only", read_only_workload),
    ("read-intensive", read_intensive_workload),
    ("read-write-mixed", mixed_workload),
)
