"""Trace I/O: persist, load, and synthesise workload traces.

The paper drives its simulator with randomly generated ``<S, L, T>``
tuples; real deployments replay traces.  This module gives workloads a
durable on-disk form (a minimal CSV: ``kind,start,length,times``) plus two
synthetic generators beyond the paper's uniform mix — sequential scans
(streaming/backup traffic) and Zipf-skewed hotspots (the access-frequency
skew the paper's §I uses to argue rotation cannot balance I/O).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.iosim.request import Operation, ReadOp, WriteOp
from repro.iosim.workloads import Workload
from repro.util.validation import require, require_positive

_HEADER = ["kind", "start", "length", "times"]


def save_trace(workload: Workload, path: Union[str, Path]) -> Path:
    """Write a workload as a CSV trace; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for op in workload:
            writer.writerow([op.kind, op.start, op.length, op.times])
    return path


def load_trace(
    path: Union[str, Path], name: str = None
) -> Workload:
    """Load a CSV trace back into a :class:`Workload`.

    Malformed rows raise :class:`ValueError` with the line number — a
    trace that silently drops operations would corrupt comparisons.
    """
    path = Path(path)
    ops: List[Operation] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(
                f"{path}: expected header {_HEADER}, got {header}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 fields")
            kind, start, length, times = row
            try:
                ops.append(
                    Operation(kind, int(start), int(length), int(times))
                )
            except (ValueError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
    reads = sum(1 for op in ops if op.is_read)
    frac = reads / len(ops) if ops else 1.0
    return Workload(
        name=name if name is not None else path.stem,
        operations=tuple(ops),
        read_fraction=frac,
    )


def sequential_workload(
    address_space: int,
    rng: np.random.Generator,
    num_ops: int = 200,
    run_length: int = 64,
    read_fraction: float = 1.0,
) -> Workload:
    """Streaming scans: long runs advancing through the address space."""
    require_positive(address_space, "address_space")
    require_positive(run_length, "run_length")
    ops: List[Operation] = []
    cursor = 0
    for _ in range(num_ops):
        length = min(run_length, address_space)
        ctor = ReadOp if rng.random() < read_fraction else WriteOp
        ops.append(ctor(cursor % address_space, length, 1))
        cursor += length
    return Workload(name="sequential", operations=tuple(ops),
                    read_fraction=read_fraction)


def zipf_workload(
    address_space: int,
    rng: np.random.Generator,
    num_ops: int = 2000,
    skew: float = 1.3,
    max_length: int = 20,
    max_times: int = 1000,
    read_fraction: float = 0.5,
) -> Workload:
    """Hotspot traffic: start addresses drawn from a Zipf distribution.

    A handful of logical regions absorb most accesses — the "different
    access frequencies" per stripe that defeat global rotation schemes.
    """
    require_positive(address_space, "address_space")
    require(skew > 1.0, f"zipf skew must be > 1, got {skew}")
    ranks = rng.zipf(skew, size=num_ops)
    starts = (ranks - 1) % address_space
    lengths = rng.integers(1, max_length + 1, num_ops)
    times = rng.integers(1, max_times + 1, num_ops)
    is_read = rng.random(num_ops) < read_fraction
    ops = [
        (ReadOp if r else WriteOp)(int(s), int(length), int(t))
        for s, length, t, r in zip(starts, lengths, times, is_read)
    ]
    return Workload(name=f"zipf-{skew}", operations=tuple(ops),
                    read_fraction=read_fraction)
