"""Mapping workload operations to per-disk element accesses.

This is the simulator behind the paper's Figures 4 and 5.  For every
operation it computes exactly which elements each disk must read or write:

* **normal read** — the addressed data cells, one access each (parity disks
  serve nothing, which is what starves RDP's and H-Code's parity disks and
  blows up their load-balancing factor);
* **degraded read** — surviving addressed cells plus, for each lost cell,
  the cheapest recovery set: among the parity groups covering the cell,
  pick the one whose members are not themselves failed and that adds the
  fewest elements beyond what the operation already fetched.  Contiguous
  reads in D-Code overlap their horizontal groups heavily, which is the
  mechanism behind the paper's degraded-read win over X-Code;
* **partial-stripe write** — read-modify-write: read the old data cells and
  every (transitively) affected parity cell, then write them all back.
  Parity groups that cover other parity cells (RDP, HDP) cascade.  A write
  covering a whole stripe skips the old-value reads and writes the full
  stripe (reconstruct-write).

Counts are multiplied by the operation's repeat factor ``T`` instead of
looping, so 2000-op workloads with ``T`` up to 1000 evaluate in
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.codes.base import Cell, CodeLayout
from repro.codec.decoder import RecoveryStep, plan_chain_recovery, plan_slice
from repro.codec.encoder import _toposort_groups
from repro.iosim.request import Operation
from repro.iosim.workloads import Workload
from repro.util.validation import require, require_positive


@dataclass
class DiskLoads:
    """Per-disk access tallies accumulated over a workload."""

    reads: np.ndarray
    writes: np.ndarray

    @classmethod
    def zeros(cls, num_disks: int) -> "DiskLoads":
        return cls(np.zeros(num_disks, dtype=np.int64),
                   np.zeros(num_disks, dtype=np.int64))

    @property
    def total(self) -> np.ndarray:
        """Total accesses per disk (reads + writes) — the paper's ``L(i)``."""
        return self.reads + self.writes

    @property
    def cost(self) -> int:
        """Total I/O accesses over all disks — the paper's ``Cost``."""
        return int(self.total.sum())

    def __iadd__(self, other: "DiskLoads") -> "DiskLoads":
        self.reads += other.reads
        self.writes += other.writes
        return self


@dataclass(frozen=True)
class StripeReadPlan:
    """Executable read plan for one stripe of a (possibly degraded) read.

    ``fetch`` — cells to read from disk.  ``recipe`` — ordered XOR steps
    rebuilding lost cells from fetched/previously-rebuilt cells; ``None``
    means the loss pattern needs algebraic decoding over the fetched set
    (the EVENODD fallback).  ``lost`` — the wanted cells that need
    rebuilding (empty for healthy stripes).
    """

    stripe: int
    fetch: "frozenset[Cell]"
    recipe: Optional[Tuple[RecoveryStep, ...]]
    lost: Tuple[Cell, ...]

    @property
    def needs_decode(self) -> bool:
        return bool(self.lost)


class AccessEngine:
    """Counts the element accesses a layout incurs for each operation.

    ``num_stripes`` sizes the logical address space
    (``num_stripes * layout.num_data_cells`` elements); operations wrap
    modulo that space.  ``failed_disk`` switches reads to degraded mode.
    ``rotate`` shifts the logical-to-physical column mapping by one per
    stripe (classic RAID-5-style parity rotation), kept as an ablation —
    the paper's §I notes rotation cannot fix intra-stripe imbalance.
    """

    #: Partial-stripe write policies: read-modify-write (patch the touched
    #: parities), reconstruct-write (read the *untouched* data instead and
    #: re-encode), or adaptive (whichever costs fewer accesses, the choice
    #: a real controller makes per request).
    WRITE_POLICIES = ("rmw", "reconstruct", "adaptive")

    def __init__(
        self,
        layout: CodeLayout,
        num_stripes: int = 64,
        failed_disk: Optional[int] = None,
        rotate: bool = False,
        write_policy: str = "rmw",
        failed_disks: Sequence[int] = (),
    ) -> None:
        require_positive(num_stripes, "num_stripes")
        failures = set(failed_disks)
        if failed_disk is not None:
            failures.add(failed_disk)
        for disk in failures:
            require(0 <= disk < layout.cols,
                    f"failed disk must be in [0, {layout.cols}), "
                    f"got {disk}")
        require(len(failures) <= 2,
                f"RAID-6 degraded mode supports at most 2 failed disks, "
                f"got {len(failures)}")
        require(write_policy in self.WRITE_POLICIES,
                f"write_policy must be one of {self.WRITE_POLICIES}, "
                f"got {write_policy!r}")
        self.layout = layout
        self.num_stripes = num_stripes
        self.failed_disks: Tuple[int, ...] = tuple(sorted(failures))
        self.failed_disk = (
            self.failed_disks[0] if len(self.failed_disks) == 1 else None
        )
        self.rotate = rotate
        self.write_policy = write_policy
        self._encode_order = _toposort_groups(layout)
        #: family order for deterministic tie-breaks in recovery selection
        self._family_rank = {f: i for i, f in enumerate(layout.families())}
        #: cached double-failure chain plans, keyed by layout column pair
        self._double_plans: Dict[Tuple[int, int], object] = {}
        # -- vectorised-accounting caches (docs/performance.md) -----------
        # Plans and per-column access counts depend only on the failure
        # pattern and the wanted cells — never on the stripe id itself —
        # so they compute once per distinct request shape and replay as
        # O(cols) numpy adds per stripe.
        self._plan_cache: Dict[object, "StripeReadPlan"] = {}
        self._fetch_count_cache: Dict[object, np.ndarray] = {}
        self._write_count_cache: Dict[
            object, Tuple[np.ndarray, np.ndarray]
        ] = {}
        #: per-column data-cell counts of logical prefix ``data_cells[:j]``
        #: (row ``j``), used to price healthy reads without touching cells
        per = layout.num_data_cells
        onehot = np.zeros((per, layout.cols), dtype=np.int64)
        onehot[np.arange(per),
               [c.col for c in layout.data_cells]] = 1
        self._data_col_prefix = np.vstack(
            [np.zeros((1, layout.cols), dtype=np.int64),
             np.cumsum(onehot, axis=0)]
        )
        self._data_cells_list = list(layout.data_cells)

    # -- addressing -----------------------------------------------------------

    @property
    def address_space(self) -> int:
        """Number of addressable logical data elements."""
        return self.num_stripes * self.layout.num_data_cells

    def locate(self, logical: int) -> Tuple[int, Cell]:
        """Map a logical element to ``(stripe_index, cell)`` (modulo space)."""
        logical %= self.address_space
        per = self.layout.num_data_cells
        return logical // per, self.layout.data_cell(logical % per)

    def physical_disk(self, stripe: int, col: int) -> int:
        """Physical disk holding column ``col`` of stripe ``stripe``."""
        if self.rotate:
            return (col + stripe) % self.layout.cols
        return col

    def failed_column(self, stripe: int) -> Optional[int]:
        """Layout column of ``stripe`` on the failed disk (single-failure
        helper; ``None`` when healthy or doubly degraded)."""
        if len(self.failed_disks) != 1:
            return None
        if self.rotate:
            return (self.failed_disks[0] - stripe) % self.layout.cols
        return self.failed_disks[0]

    def failed_columns(self, stripe: int) -> Tuple[int, ...]:
        """Layout columns of ``stripe`` sitting on failed disks."""
        if self.rotate:
            return tuple(
                sorted((f - stripe) % self.layout.cols
                       for f in self.failed_disks)
            )
        return self.failed_disks

    def _range_by_stripe(
        self, start: int, length: int
    ) -> List[Tuple[int, List[Cell]]]:
        """Split a logical range into per-stripe cell lists, in order.

        Segment arithmetic (stripe-at-a-time slices of the logical cell
        order) rather than a per-element walk; adjacent entries landing in
        the same stripe merge, exactly as the historical element loop did.
        """
        out: List[Tuple[int, List[Cell]]] = []
        per = self.layout.num_data_cells
        space = self.address_space
        pos = start % space
        remaining = length
        while remaining > 0:
            stripe, j = divmod(pos, per)
            take = min(per - j, remaining)
            cells = self._data_cells_list[j:j + take]
            if out and out[-1][0] == stripe:
                out[-1][1].extend(cells)
            else:
                out.append((stripe, list(cells)))
            pos = (pos + take) % space
            remaining -= take
        return out

    def _accumulate(
        self, acc: np.ndarray, counts: np.ndarray, stripe: int
    ) -> None:
        """Add per-column ``counts`` of ``stripe`` into per-disk ``acc``."""
        if self.rotate:
            acc += np.roll(counts, stripe % self.layout.cols)
        else:
            acc += counts

    # -- reads ------------------------------------------------------------------

    def read_accesses(self, start: int, length: int) -> DiskLoads:
        """Per-disk accesses of one execution of a read ``<S, L, 1>``."""
        loads = DiskLoads.zeros(self.layout.cols)
        if not self.failed_disks and not (
            # wrap-around onto a single stripe dedups fetched cells —
            # only the plan-set walk reproduces that
            self.num_stripes == 1 and length > self.layout.num_data_cells
        ):
            self._healthy_read_counts(start, length, loads.reads)
            return loads
        for stripe, wanted in self._range_by_stripe(start, length):
            self._accumulate(
                loads.reads, self._fetch_counts(stripe, wanted), stripe
            )
        return loads

    def _healthy_read_counts(
        self, start: int, length: int, reads: np.ndarray
    ) -> None:
        """Healthy-array read accounting without touching a single cell.

        The addressed cells of a stripe segment are a contiguous slice of
        the logical cell order, so their per-column counts come straight
        from the prefix table; full stripes in the middle of the range
        collapse to one multiply (plus, under rotation, a
        shift-multiplicity product).
        """
        per = self.layout.num_data_cells
        cols = self.layout.cols
        space = self.address_space
        prefix = self._data_col_prefix
        pos = start % space
        remaining = length
        # head: the partial tail of the first stripe
        j = pos % per
        if j:
            take = min(per - j, remaining)
            self._accumulate(reads, prefix[j + take] - prefix[j], pos // per)
            pos = (pos + take) % space
            remaining -= take
        # middle: whole stripes
        n_full, tail = divmod(remaining, per)
        if n_full:
            full = prefix[per]
            if self.rotate:
                stripes = (
                    pos // per + np.arange(n_full)
                ) % self.num_stripes
                mult = np.bincount(stripes % cols, minlength=cols)
                rolled = np.stack(
                    [np.roll(full, s) for s in range(cols)]
                )
                reads += mult @ rolled
            else:
                reads += full * n_full
            pos = (pos + n_full * per) % space
        # tail: the leading slice of the last stripe
        if tail:
            self._accumulate(reads, prefix[tail], pos // per)

    def _fetch_counts(self, stripe: int, wanted: List[Cell]) -> np.ndarray:
        """Per-column fetch counts of one stripe's (degraded) read plan."""
        key = (self.failed_columns(stripe), tuple(wanted))
        counts = self._fetch_count_cache.get(key)
        if counts is None:
            plan = self._plan_stripe_read(stripe, wanted)
            counts = np.bincount(
                [c.col for c in plan.fetch], minlength=self.layout.cols
            )
            self._fetch_count_cache[key] = counts
        return counts

    def read_fetch_sets(
        self, start: int, length: int
    ) -> List[Tuple[int, Set[Cell]]]:
        """Per-stripe cells fetched from disk for a read ``<S, L>``.

        In degraded mode the sets include reconstruction reads; the timing
        model (:mod:`repro.perf`) consumes these to price the request.
        """
        return [
            (plan.stripe, set(plan.fetch))
            for plan in self.stripe_read_plans(start, length)
        ]

    def stripe_read_plans(
        self, start: int, length: int
    ) -> List["StripeReadPlan"]:
        """Executable per-stripe read plans for ``<S, L>``.

        Each plan names the cells to fetch from disk and, in degraded
        mode, the ordered XOR recipe rebuilding the lost wanted cells
        from them.  :class:`~repro.array.volume.RAID6Volume` executes
        these plans verbatim, so the simulator's Figure-4/5/6/7 counts
        and the volume's real disk counters agree by construction.
        """
        return [
            self._plan_stripe_read(stripe, wanted)
            for stripe, wanted in self._range_by_stripe(start, length)
        ]

    def _stripe_read_set(self, stripe: int, wanted: Sequence[Cell]) -> Set[Cell]:
        """Cells actually fetched from disk to serve ``wanted`` in a stripe."""
        return set(self._plan_stripe_read(stripe, wanted).fetch)

    def _plan_stripe_read(
        self, stripe: int, wanted: Sequence[Cell]
    ) -> "StripeReadPlan":
        """Cached plan lookup: a plan depends only on the stripe's failure
        pattern and the wanted cells, so distinct request shapes compute
        once and replay with the stripe id patched in."""
        key = (self.failed_columns(stripe), tuple(wanted))
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self._build_stripe_read_plan(stripe, wanted)
            self._plan_cache[key] = plan
        if plan.stripe != stripe:
            plan = replace(plan, stripe=stripe)
        return plan

    def _build_stripe_read_plan(
        self, stripe: int, wanted: Sequence[Cell]
    ) -> "StripeReadPlan":
        cols = self.failed_columns(stripe)
        if len(cols) == 0:
            return StripeReadPlan(stripe, frozenset(wanted), (), ())
        if len(cols) == 2:
            return self._plan_double_failure(stripe, wanted, cols)
        failed_col = cols[0]
        fetched: Set[Cell] = {c for c in wanted if c.col != failed_col}
        lost = [c for c in wanted if c.col == failed_col]
        recovered: Set[Cell] = set()
        recipe: List[RecoveryStep] = []
        for cell in lost:
            best: Optional[Set[Cell]] = None
            best_key = None
            best_group = None
            for group in self.layout.groups_covering(cell):
                needed = {c for c in group.cells if c != cell}
                if any(c.col == failed_col for c in needed):
                    continue  # group unusable: relies on another lost cell
                extra = needed - fetched - recovered
                key = (len(extra), self._family_rank[group.family],
                       group.parity)
                if best_key is None or key < best_key:
                    best, best_key, best_group = extra, key, group
            if best is None:
                # no single-group recovery (possible for EVENODD's coupled
                # diagonals): fall back to reading every surviving cell
                # and decoding the whole loss set algebraically
                survivors = {
                    c
                    for col in range(self.layout.cols)
                    if col != failed_col
                    for c in self.layout.cells_in_column(col)
                }
                return StripeReadPlan(
                    stripe, frozenset(fetched | survivors), None,
                    tuple(lost),
                )
            fetched |= best
            recovered.add(cell)
            recipe.append(RecoveryStep(cell, best_group))
        return StripeReadPlan(stripe, frozenset(fetched), tuple(recipe),
                              tuple(lost))

    def _plan_double_failure(
        self, stripe: int, wanted: Sequence[Cell], cols: Tuple[int, int]
    ) -> "StripeReadPlan":
        """Read plan under two concurrent failures.

        Chain-decodable codes reconstruct through the cached column-pair
        plan, charged only for the *slice* that rebuilds the wanted lost
        cells; non-chain codes (EVENODD) read every surviving cell.
        """
        lost_cols = set(cols)
        fetched: Set[Cell] = {c for c in wanted if c.col not in lost_cols}
        lost = [c for c in wanted if c.col in lost_cols]
        if not lost:
            return StripeReadPlan(stripe, frozenset(fetched), (), ())
        if not self.layout.chain_decodable:
            survivors = {
                c
                for col in range(self.layout.cols)
                if col not in lost_cols
                for c in self.layout.cells_in_column(col)
            }
            return StripeReadPlan(
                stripe, frozenset(fetched | survivors), None, tuple(lost)
            )
        plan = self._double_plans.get(cols)
        if plan is None:
            from repro.codes.base import column_failure_cells

            plan = plan_chain_recovery(
                self.layout, column_failure_cells(self.layout, cols)
            )
            if plan is None:
                raise ValueError(
                    f"{self.layout.name} cannot chain-recover columns "
                    f"{cols}"
                )
            self._double_plans[cols] = plan
        steps, disk_reads = plan_slice(plan, lost)
        return StripeReadPlan(
            stripe, frozenset(fetched | set(disk_reads)), tuple(steps),
            tuple(lost),
        )

    # -- writes -----------------------------------------------------------------

    def write_accesses(self, start: int, length: int) -> DiskLoads:
        """Per-disk accesses of one execution of a write ``<S, L, 1>``."""
        loads = DiskLoads.zeros(self.layout.cols)
        for stripe, targets in self._range_by_stripe(start, length):
            read_counts, write_counts = self._write_counts(targets)
            lost = self.failed_columns(stripe)
            if lost:
                # cells on failed disks are dropped from both sets, which
                # in per-column counts is just zeroing those columns
                read_counts = read_counts.copy()
                write_counts = write_counts.copy()
                read_counts[list(lost)] = 0
                write_counts[list(lost)] = 0
            self._accumulate(loads.reads, read_counts, stripe)
            self._accumulate(loads.writes, write_counts, stripe)
        return loads

    def _write_counts(
        self, targets: List[Cell]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-column (read, write) counts of one stripe's partial write."""
        key = (self.write_policy, tuple(targets))
        counts = self._write_count_cache.get(key)
        if counts is None:
            reads, writes = self._stripe_write_sets(set(targets))
            cols = self.layout.cols
            counts = (
                np.bincount([c.col for c in reads], minlength=cols),
                np.bincount([c.col for c in writes], minlength=cols),
            )
            self._write_count_cache[key] = counts
        return counts

    def write_io_sets(
        self, start: int, length: int
    ) -> List[Tuple[int, Set[Cell], Set[Cell]]]:
        """Per-stripe ``(stripe, cells read, cells written)`` for a write.

        Cells on a failed disk are dropped from both sets (the disk is
        gone); the timing model consumes these to price write requests.
        """
        out: List[Tuple[int, Set[Cell], Set[Cell]]] = []
        for stripe, targets in self._range_by_stripe(start, length):
            lost_cols = set(self.failed_columns(stripe))
            reads, writes = self._stripe_write_sets(set(targets))
            if lost_cols:
                reads = {c for c in reads if c.col not in lost_cols}
                writes = {c for c in writes if c.col not in lost_cols}
            out.append((stripe, reads, writes))
        return out

    def _stripe_write_sets(
        self, targets: Set[Cell]
    ) -> Tuple[Set[Cell], Set[Cell]]:
        """(cells read, cells written) for a partial write of ``targets``."""
        affected = self.affected_parities(targets)
        if len(targets) == self.layout.num_data_cells:
            # full-stripe write: encode fresh, no old values needed
            return set(), targets | affected
        rmw_reads = targets | affected
        rmw = (set(rmw_reads), set(rmw_reads))
        if self.write_policy == "rmw":
            return rmw
        # reconstruct-write: read the untouched data, rewrite targets and
        # every parity of the stripe (they are all re-encoded)
        untouched = set(self.layout.data_cells) - targets
        all_parities = set(self.layout.parity_cells)
        reconstruct = (untouched, targets | all_parities)
        if self.write_policy == "reconstruct":
            return reconstruct
        # adaptive: fewer total accesses wins; tie goes to RMW (it leaves
        # untouched parities alone, which is gentler on dedicated disks)
        rmw_cost = len(rmw[0]) + len(rmw[1])
        rec_cost = len(reconstruct[0]) + len(reconstruct[1])
        return rmw if rmw_cost <= rec_cost else reconstruct

    def affected_parities(self, targets: Iterable[Cell]) -> Set[Cell]:
        """Parity cells dirtied by writing ``targets`` (cascades included)."""
        changed: Set[Cell] = set(targets)
        affected: Set[Cell] = set()
        for group in self._encode_order:
            if any(m in changed for m in group.members):
                changed.add(group.parity)
                affected.add(group.parity)
        return affected

    # -- workload driver -----------------------------------------------------------

    def apply(self, op: Operation, loads: DiskLoads) -> None:
        """Accumulate one operation (×its repeat count) into ``loads``."""
        if op.is_read:
            once = self.read_accesses(op.start, op.length)
        else:
            once = self.write_accesses(op.start, op.length)
        loads.reads += once.reads * op.times
        loads.writes += once.writes * op.times

    def run(self, workload: Workload) -> DiskLoads:
        """Per-disk loads of a whole workload."""
        loads = DiskLoads.zeros(self.layout.cols)
        for op in workload:
            self.apply(op, loads)
        return loads
