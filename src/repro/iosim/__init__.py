"""Discrete I/O-load simulation — the paper's §IV evaluation substrate.

Workloads are streams of the paper's 3-tuples ``<S, L, T>`` (start element,
length, repeat count) tagged read or write.  The
:class:`~repro.iosim.engine.AccessEngine` maps each operation to the exact
per-disk element accesses its code layout incurs — including degraded-read
reconstruction reads and partial-stripe-write parity RMW — and the metrics
module folds those into the paper's two measures: the load-balancing factor
``LF = Lmax / Lmin`` and the total I/O cost.
"""

from repro.iosim.engine import AccessEngine, DiskLoads
from repro.iosim.metrics import io_cost, load_balancing_factor, run_workload
from repro.iosim.request import Operation, ReadOp, WriteOp
from repro.iosim.trace import (
    load_trace,
    save_trace,
    sequential_workload,
    zipf_workload,
)
from repro.iosim.workloads import (
    Workload,
    mixed_workload,
    read_intensive_workload,
    read_only_workload,
    workload_from_ratio,
)

__all__ = [
    "AccessEngine",
    "DiskLoads",
    "Operation",
    "ReadOp",
    "WriteOp",
    "Workload",
    "io_cost",
    "load_balancing_factor",
    "load_trace",
    "mixed_workload",
    "read_intensive_workload",
    "read_only_workload",
    "run_workload",
    "save_trace",
    "sequential_workload",
    "workload_from_ratio",
    "zipf_workload",
]
