"""Workload operations — the paper's ``<S, L, T>`` tuples.

Each operation reads or writes ``L`` *continuous* logical data elements
starting at element ``S``, repeated ``T`` times (§IV-A: "the tuple
``<0, 4, 5>`` means to read 4 continuous data elements that start from
``D0,0`` five times").  Logical element numbering is each layout's
``data_cells`` order continued across stripes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require, require_positive, require_type

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Operation:
    """One workload operation: ``kind`` ∈ {"read", "write"}, ``<S, L, T>``."""

    kind: str
    start: int
    length: int
    times: int = 1

    def __post_init__(self) -> None:
        require(self.kind in (READ, WRITE),
                f"kind must be 'read' or 'write', got {self.kind!r}")
        require_type(self.start, int, "start")
        require(self.start >= 0, f"start must be >= 0, got {self.start}")
        require_positive(self.length, "length")
        require_positive(self.times, "times")

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def elements_touched(self) -> int:
        """Logical elements addressed, counting repeats."""
        return self.length * self.times


def ReadOp(start: int, length: int, times: int = 1) -> Operation:
    """Convenience constructor for a read ``<S, L, T>``."""
    return Operation(READ, start, length, times)


def WriteOp(start: int, length: int, times: int = 1) -> Operation:
    """Convenience constructor for a write ``<S, L, T>``."""
    return Operation(WRITE, start, length, times)
