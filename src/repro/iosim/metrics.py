"""The paper's two I/O-load metrics (§IV-B).

* ``LF = Lmax / Lmin`` — load-balancing factor over per-disk access counts;
  1.0 is perfect balance, ``inf`` means some disk saw no traffic at all
  (the paper plots infinity as 30 in Figure 4).
* ``Cost = Σ L(i)`` — total element accesses across all disks.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.codes.base import CodeLayout
from repro.iosim.engine import AccessEngine, DiskLoads
from repro.iosim.workloads import Workload

#: The finite stand-in the paper uses when plotting an infinite LF.
INFINITY_PLOT_VALUE = 30.0


def load_balancing_factor(loads: DiskLoads) -> float:
    """``Lmax / Lmin`` over total per-disk accesses; ``inf`` when ``Lmin == 0``."""
    totals = loads.total
    lmax = int(totals.max())
    lmin = int(totals.min())
    if lmin == 0:
        return math.inf if lmax > 0 else 1.0
    return lmax / lmin


def io_cost(loads: DiskLoads) -> int:
    """Total accesses across all disks."""
    return loads.cost


def run_workload(
    layout: CodeLayout,
    workload: Workload,
    num_stripes: int = 64,
    failed_disk: Optional[int] = None,
    rotate: bool = False,
) -> DiskLoads:
    """Convenience wrapper: build an engine and tally a workload."""
    engine = AccessEngine(
        layout,
        num_stripes=num_stripes,
        failed_disk=failed_disk,
        rotate=rotate,
    )
    return engine.run(workload)


def clip_lf_for_plot(lf: float) -> float:
    """Clip an LF value the way the paper's Figure 4 does (inf -> 30)."""
    if math.isinf(lf):
        return INFINITY_PLOT_VALUE
    return min(lf, INFINITY_PLOT_VALUE)


def per_disk_summary(loads: DiskLoads) -> str:
    """Human-readable per-disk table (used by examples)."""
    totals = loads.total
    lines = ["disk  reads      writes     total"]
    for i in range(len(totals)):
        lines.append(
            f"{i:>4}  {int(loads.reads[i]):>9}  {int(loads.writes[i]):>9}  "
            f"{int(totals[i]):>9}"
        )
    lf = load_balancing_factor(loads)
    lines.append(f"LF = {lf:.3f}   Cost = {loads.cost}")
    return "\n".join(lines)
