"""Crash-safe shard state: incremental persist + an ack-intent ledger.

A process-backed shard keeps its volume, its write-back cache, and its
journal in worker memory — a ``kill -9`` vaporizes all three.  The
durable-ack contract (``ServerConfig(ack="durable")``) says a WRITE may
only be acknowledged once it would survive exactly that, so the worker
routes every acknowledgement through a :class:`ShardStateStore`:

* **ack-intent ledger** — before a batch acknowledges, every stripe
  still dirty in the cache gets one open
  :class:`~repro.journal.intent.WriteIntent` carrying its current dirty
  cells (the redo image of everything acknowledged but not yet
  destaged).  The ledger keeps at most one open intent per stripe:
  refreshing a stripe opens the new intent, then commits the stale one,
  and a stripe that destaged simply commits its intent.  This is the
  same NVRAM redo log the volume's write hole protection uses — just
  driven by the cache instead of a stripe write.
* **incremental persist** — after the ledger is synced, the shard
  appends one delta record to its sidecar log: the raw images of the
  stripes dirtied since the last checkpoint plus the full ledger
  (:mod:`repro.serve.checkpoint`).  The base ``.npz`` snapshot is only
  rewritten at compaction, so the per-batch durability cost scales
  with what the batch touched, not with the volume size — this is
  what keeps the durable-ack overhead inside the committed bench
  ceiling.
* **mount-time recovery on restart** — a restarted worker replays base
  + deltas (:func:`~repro.serve.checkpoint.load_shard_state`) and runs
  :func:`repro.journal.recovery.recover_on_mount`, which rolls the open
  ack intents forward in sequence order.  The shard comes back with an
  empty cache and a byte-identical acknowledged image.

The persist happens once per acknowledged batch (not per op), so
cross-batch write coalescing in the cache is preserved — durability
costs one ledger sync plus one delta append per batch, which the
serving bench reports against buffered acks under a committed ceiling.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.array import RAID6Volume
from repro.array.cache import StripeCache
from repro.journal.intent import WriteIntent, WriteIntentLog
from repro.journal.recovery import RecoveryReport, recover_on_mount
from repro.serve.checkpoint import (
    IncrementalCheckpointer,
    load_shard_state,
)


class ShardStateStore:
    """Durable acknowledgement state for one shard volume."""

    def __init__(
        self,
        path: os.PathLike,
        volume: RAID6Volume,
        cache: Optional[StripeCache],
        *,
        compact_every: int = 256,
        compact_ratio: float = 4.0,
    ) -> None:
        if volume.journal is None:
            raise ValueError(
                "durable shard state needs a journaled volume "
                "(build the spec with durable=True)"
            )
        self.path = Path(path)
        self.volume = volume
        self.cache = cache
        #: stripe -> the open intent covering its acknowledged dirty cells
        self._acks: Dict[int, WriteIntent] = {}
        self._engine = IncrementalCheckpointer(
            volume,
            self.path,
            compact_every=compact_every,
            compact_ratio=compact_ratio,
        )
        self.persists = 0

    # -- introspection ---------------------------------------------------------

    @property
    def deltas(self) -> int:
        """Delta records appended since boot."""
        return self._engine.deltas

    @property
    def compactions(self) -> int:
        return self._engine.compactions

    @property
    def epoch(self) -> int:
        return self._engine.epoch

    # -- the per-batch acknowledgement barrier ---------------------------------

    def sync(self) -> None:
        """Refresh the ack-intent ledger from the cache's dirty map.

        Stripes that destaged since the last sync commit their intent
        (the data reached the volume image, which the next persist
        covers); stripes still dirty get a fresh intent with their
        *current* dirty cells, and only then is the stale one committed
        — the ledger never has a window where an acknowledged cell is
        covered by neither the volume image nor an open intent.
        """
        journal = self.volume.journal
        dirty = (
            self.cache.dirty_snapshot() if self.cache is not None else {}
        )
        for stripe in [s for s in self._acks if s not in dirty]:
            journal.commit(self._acks.pop(stripe))
        for stripe, items in dirty.items():
            stale = self._acks.get(stripe)
            self._acks[stripe] = journal.open(stripe, items)
            if stale is not None:
                journal.commit(stale)

    def persist(self) -> None:
        """Append one delta record (or compact) to the state files."""
        self._engine.checkpoint()
        self.persists += 1

    def compact(self) -> None:
        """Force a compaction: fresh base snapshot, truncated log."""
        self._engine.tracker.drain()
        self._engine.compact()

    def checkpoint(self) -> None:
        """The durable-ack barrier: ledger sync, then incremental persist.

        Called by the worker after executing a batch that wrote (and on
        graceful shutdown) **before** the batch's results are sent — so
        by the time a client sees OK, the bytes survive ``kill -9``.
        """
        self.sync()
        self.persist()

    def close(self) -> None:
        self._engine.close()


def build_shard_state(
    spec,
) -> Tuple[RAID6Volume, Optional[StripeCache], Optional["ShardStateStore"],
           Optional[RecoveryReport]]:
    """Build (or restore) one shard's volume/cache/state from its spec.

    Without a ``state_path`` this is exactly ``spec.build()``.  With
    one, a fresh boot creates a journaled volume and seeds the first
    base snapshot; a restart replays base + delta records and the open
    ack intents through the standard mount-time recovery, so the shard
    resumes with every acknowledged write in place.
    """
    if spec.state_path is None:
        volume, cache = spec.build()
        return volume, cache, None, None

    path = Path(spec.state_path)
    report = None
    seeded = path.exists()
    if seeded:
        volume, _ = load_shard_state(path)
        if volume.journal is None:  # pragma: no cover — v1 snapshot
            volume.journal = WriteIntentLog()
    else:
        volume, _ = spec.build()
        if volume.journal is None:
            volume.journal = WriteIntentLog()
    cache = spec.build_cache(volume)
    store = ShardStateStore(path, volume, cache)
    if seeded:
        # recovery must run with the dirty-stripe tracker attached (the
        # store wires it in): the rolled-forward stripes then land in
        # the next delta record, whose journal section no longer holds
        # the replayed intents — detached, a crash after that record
        # would lose the recovered writes
        report = recover_on_mount(volume)
    else:
        # seed the base snapshot so a pre-write crash reloads cleanly
        store._engine.write_base()
    return volume, cache, store, report
