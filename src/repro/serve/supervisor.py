"""Shard supervision: health checks, typed failure, restart-from-spec.

A :class:`ProcessShard` converts worker death and hangs into typed
errors, but somebody has to *act* on them — that is the
:class:`SupervisedShard`.  It wraps a process shard and

* **restarts on failure**: a batch that raises
  :class:`~repro.exceptions.ShardCrashedError` or
  :class:`~repro.exceptions.ShardTimeoutError` triggers an immediate
  restart from the (chaos-cleared) spec, then re-raises the typed error
  so the coalescer can answer the affected ops with RETRY — by the time
  the client's backoff expires, the replacement worker is already
  serving.  In durable mode the replacement reloads base snapshot +
  delta log and replays the ack-intent ledger, so no acknowledged write
  is lost.  The restart also cycles the shard's shared-memory payload
  ring: the parent retires the old segment (unlinked at once, unmapped
  when the last in-flight response slice is released) and the
  replacement worker inherits a fresh one — a SIGKILLed worker can
  never leak a ``/dev/shm`` segment, because only the parent ever owns
  one.
* **health-checks in the background**: a daemon monitor thread
  periodically verifies the worker process is alive and, when the shard
  is idle, round-trips a heartbeat (an empty batch) through the pipe —
  catching workers that died *between* batches, not just under one.
  The monitor never contends with a running batch: it probes with a
  non-blocking lock acquire and simply skips a busy shard (an in-flight
  batch is itself proof of liveness, and the batch deadline covers the
  hang case).
* **budgets restarts**: ``max_restarts`` failures flip the shard to
  *failed*; further batches raise a plain
  :class:`~repro.exceptions.ReproError` (→ ERROR, not RETRY) so clients
  stop hammering a shard that cannot stay up.

All batch traffic is serialised through one lock, which the coalescer's
single-thread executor already guarantees in practice — the lock exists
so the monitor's heartbeat and a concurrent restart can never interleave
frames on the pipe.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.exceptions import (
    ReproError,
    ShardCrashedError,
    ShardTimeoutError,
)
from repro.serve.shard import ProcessShard, ShardOp, ShardResult, ShardSpec


class SupervisedShard:
    """A :class:`ProcessShard` under health checks and restart policy."""

    def __init__(
        self,
        spec: ShardSpec,
        recv_timeout: Optional[float] = None,
        heartbeat_s: float = 0.0,
        max_restarts: int = 8,
    ) -> None:
        self.spec = spec
        self.max_restarts = max_restarts
        self.heartbeat_s = heartbeat_s
        self.crashes = 0
        self.timeouts = 0
        self._shard = ProcessShard(spec, recv_timeout=recv_timeout)
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        if heartbeat_s > 0:
            self._monitor = threading.Thread(
                target=self._monitor_loop, daemon=True,
                name="shard-monitor",
            )
            self._monitor.start()

    # -- introspection ---------------------------------------------------------

    @property
    def restarts(self) -> int:
        return self._shard.restarts

    @property
    def failed(self) -> bool:
        """True once the restart budget is exhausted."""
        return self._shard.restarts >= self.max_restarts

    def alive(self) -> bool:
        return self._shard.alive()

    # -- the serving path ------------------------------------------------------

    def execute(
        self, ops: List[ShardOp], deadline: Optional[float] = None
    ) -> List[ShardResult]:
        """Run one batch; on crash/timeout, restart and re-raise typed.

        The re-raised :class:`ShardCrashedError` /
        :class:`ShardTimeoutError` tells the coalescer to answer the
        batch's ops with RETRY — the restart has already happened, so
        the retried ops land on the fresh worker.
        """
        with self._lock:
            if self.failed:
                raise ReproError(
                    f"shard exhausted its restart budget "
                    f"({self.max_restarts}) and is out of service"
                )
            try:
                return self._shard.execute(ops, deadline=deadline)
            except (ShardCrashedError, ShardTimeoutError) as exc:
                self._note(exc)
                self._shard.restart()
                raise

    # -- chaos hooks -----------------------------------------------------------

    def kill(self) -> None:
        """Parent-side SIGKILL of the current worker (chaos harness)."""
        self._shard.kill()

    # -- health checking -------------------------------------------------------

    def check(self, ping_timeout: float = 1.0) -> bool:
        """One health probe; returns True if the worker looks healthy.

        Dead or unresponsive workers are restarted (within budget) and
        the probe reports False.  A shard busy with a batch is healthy
        by definition and is not probed.
        """
        if not self._lock.acquire(blocking=False):
            return True  # in-flight batch == liveness
        try:
            if self.failed:
                return False
            try:
                if not self._shard.alive():
                    raise ShardCrashedError(
                        "worker", "process found dead between batches"
                    )
                self._shard.ping(timeout=ping_timeout)
                return True
            except (ShardCrashedError, ShardTimeoutError) as exc:
                self._note(exc)
                self._shard.restart()
                return False
        finally:
            self._lock.release()

    def _note(self, exc: ReproError) -> None:
        if isinstance(exc, ShardTimeoutError):
            self.timeouts += 1
        else:
            self.crashes += 1

    def _monitor_loop(self) -> None:  # pragma: no cover — timing-dependent
        while not self._closed.wait(self.heartbeat_s):
            try:
                self.check()
            except Exception:  # noqa: BLE001 — monitor must never die
                pass

    # -- shutdown --------------------------------------------------------------

    def close(self) -> None:
        self._closed.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
        with self._lock:
            self._shard.close()
