"""Admission control: bounded in-flight + token-bucket rate limiting.

Overload must degrade into *typed refusals*, not latency collapse: a
server that queues without bound converts every burst into p99 pain
for all tenants.  Admission is checked in O(1) before an op touches a
shard queue; a refusal answers BUSY, which costs the server a frame
write and the client a backoff — nothing else.

Both knobs are per-tenant, so one tenant flooding the service cannot
starve the rest (the multi-tenant fairness the paper's load-balancing
claims implicitly assume):

* **in-flight bound** — at most ``max_inflight`` ops of a tenant may
  be queued/executing at once (the closed-loop component);
* **token bucket** — sustained ops/s capped at ``rate`` with ``burst``
  tokens of headroom (the open-loop component); ``rate=None`` disables
  the bucket and leaves only the in-flight bound.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.util.validation import require_positive


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def try_take(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; refuse without blocking."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


class AdmissionControl:
    """Per-tenant admission: in-flight bound + optional token bucket."""

    def __init__(
        self,
        max_inflight: int = 64,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        require_positive(max_inflight, "max_inflight")
        self.max_inflight = max_inflight
        self.rate = rate
        self.burst = burst if burst is not None else (
            rate if rate is not None else None
        )
        self._clock = clock
        self._inflight: Dict[int, int] = {}
        self._buckets: Dict[int, TokenBucket] = {}
        self.admitted = 0
        self.refused = 0

    def _bucket(self, tenant: int) -> Optional[TokenBucket]:
        if self.rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: int) -> bool:
        """Try to admit one op for ``tenant``; pair with ``release``."""
        if self._inflight.get(tenant, 0) >= self.max_inflight:
            self.refused += 1
            return False
        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_take():
            self.refused += 1
            return False
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        self.admitted += 1
        return True

    def release(self, tenant: int) -> None:
        """Mark one admitted op of ``tenant`` as finished."""
        left = self._inflight.get(tenant, 0) - 1
        if left > 0:
            self._inflight[tenant] = left
        else:
            self._inflight.pop(tenant, None)

    def inflight(self, tenant: int) -> int:
        return self._inflight.get(tenant, 0)
