"""Shard backends: one volume + write-back cache per shard.

A shard is a :class:`RAID6Volume` plus a :class:`StripeCache`, executed
either in-process (:class:`InlineShard`) or in a forked worker process
(:class:`ProcessShard`) so serving is not bound by the parent's GIL.
Either way, :func:`execute_ops` is the single entry point: it runs one
*batch* of shard-local ops in arrival order, buffering writes through
the cache and destaging the whole batch at the end — that coalescing is
what routes serving traffic onto the volume's batched RMW / full-stripe
/ destage paths instead of one parity round-trip per request.

Backends promise **serialised** batches: the coalescer drives each
shard from a single-thread executor, so ``execute`` is never entered
concurrently.  Cross-shard concurrency needs no coordination at all —
shards own disjoint volumes.

The process backend speaks small control frames over a
:class:`multiprocessing.Pipe` while bulk data rides a per-incarnation
shared-memory :class:`~repro.serve.shmring.PayloadRing`: WRITE payloads
are copied once into a parent-allocated slot and referenced by a
``(slot, length)`` descriptor, READ results are copied once by the
worker into a slot the parent reserved and come back the same way — no
pickling of bulk bytes in either direction.  The parent owns every
slot and the segment itself (created pre-fork, inherited, unlinked on
retire), so a ``kill -9`` of the worker can never leak ``/dev/shm``
state; ring exhaustion answers the op a typed BUSY instead of
blocking.  Worker faults come back **typed**:

* an in-batch Python error arrives as a ``("__shard_error__", tb)``
  marker and raises :class:`RuntimeError` with the worker traceback;
* a dead worker (EOF / broken pipe) raises
  :class:`~repro.exceptions.ShardCrashedError`;
* a worker that misses the per-batch deadline (``recv_timeout`` or the
  propagated request deadline) raises
  :class:`~repro.exceptions.ShardTimeoutError` — after which the pipe
  may hold a stale late reply, so the shard must be restarted
  (:meth:`ProcessShard.restart`) before reuse.  The
  :class:`~repro.serve.supervisor.SupervisedShard` automates both.

An **empty batch is a heartbeat**: the worker answers ``[]`` without
touching the volume, which is how the supervisor pings a quiet worker
through the very pipe traffic travels on.

With ``durable=True`` the worker acknowledges a writing batch only
after the :class:`~repro.serve.state.ShardStateStore` checkpoint
(ack-intent ledger sync + atomic snapshot), so acknowledged writes
survive ``kill -9``; a restarted worker reloads the snapshot and
replays the ledger through mount-time journal recovery.

The ``chaos_*`` spec fields are the seeded fault hooks the serving
chaos harness (:mod:`repro.serve.chaos`) drives: a worker can SIGKILL
itself or stall mid-batch at an exact op count, which makes "worker
dies between op 17 and 18" a deterministic, replayable event.
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.array import RAID6Volume
from repro.array.cache import StripeCache
from repro.codes.registry import make_code
from repro.exceptions import (
    ReproError,
    ShardCrashedError,
    ShardTimeoutError,
)
from repro.journal.intent import WriteIntentLog
from repro.serve.protocol import (
    OP_FAIL_DISK,
    OP_READ,
    OP_SCRUB,
    OP_STAT,
    OP_WRITE,
    ST_BUSY,
    ST_ERROR,
    ST_OK,
)
from repro.serve.shmring import PayloadRing

#: One shard-local op: (op, start, count, payload).
ShardOp = Tuple[int, int, int, bytes]

#: One result: (status, payload).  The payload is ``bytes`` for control
#: results, and may be a buffer-protocol object (``np.ndarray`` from an
#: inline shard, :class:`~repro.serve.shmring.ShmSlice` from a process
#: shard) for READ data — the server hands either to ``sendmsg``
#: without an intermediate join.
ShardResult = Tuple[int, object]

#: Typed marker the worker process sends when a batch raises.
WORKER_ERROR = "__shard_error__"

#: Pipe descriptor tags for ring-resident payloads (parent → worker →
#: parent).  ``("W", slot, length)`` marks a WRITE payload already in
#: the ring; ``("R", slot)`` reserves a slot for a READ result;
#: ``("S", slot, length)`` marks a result the worker placed there.
SHM_WRITE = "W"
SHM_READ = "R"
SHM_RESULT = "S"


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to build one shard's volume (picklable).

    ``write_back=True`` (the serving architecture) buffers writes in
    the stripe cache and destages on pressure — cross-batch coalescing
    is where the ops/s win comes from, and reads stay correct through
    the dirty overlay.  ``write_back=False`` is the naive baseline:
    every op goes straight to the volume, one parity round-trip per
    write.

    ``durable=True`` attaches a write-intent journal and, combined with
    a ``state_path``, makes the worker checkpoint through a
    :class:`~repro.serve.state.ShardStateStore` before acknowledging
    writes.  The ``chaos_*`` fields are one-shot seeded fault hooks
    (cleared by :meth:`ProcessShard.restart`, so a restarted worker
    does not re-die at the same op count).
    """

    code: str = "dcode"
    p: int = 7
    num_stripes: int = 64
    element_size: int = 64
    workers: Optional[int] = None
    process_pool: Optional[bool] = None
    cache_stripes: int = 16
    evict_batch: int = 4
    write_back: bool = True
    #: Durable-ack mode: journaled volume + checkpoint-before-ack.
    durable: bool = False
    #: Snapshot file for this shard's crash-safe state (durable mode).
    state_path: Optional[str] = None
    #: Shared-memory payload ring slots per worker incarnation
    #: (0 disables the ring: all payloads travel inline on the pipe).
    ring_slots: int = 128
    #: Bytes per ring slot; 0 = auto (64 elements, floor 4 KiB).
    ring_slot_bytes: int = 0
    #: Dump a cProfile of the worker's batch execution here on
    #: graceful shutdown (``bench-serve --profile``).
    profile_path: Optional[str] = None
    #: Chaos: SIGKILL the worker just before executing this (1-based)
    #: lifetime op — a deterministic mid-batch worker death.
    chaos_kill_after_ops: Optional[int] = None
    #: Chaos: stall ``chaos_stall_s`` seconds before executing this
    #: lifetime op (a pipe stall / slow shard, depending on whether the
    #: stall exceeds the parent's batch deadline).
    chaos_stall_after_ops: Optional[int] = None
    chaos_stall_s: float = 0.0

    def build_volume(self) -> RAID6Volume:
        return RAID6Volume(
            make_code(self.code, self.p),
            num_stripes=self.num_stripes,
            element_size=self.element_size,
            workers=self.workers,
            process_pool=self.process_pool,
            journal=WriteIntentLog() if self.durable else None,
        )

    def build_cache(self, volume: RAID6Volume) -> Optional[StripeCache]:
        if not self.write_back:
            return None
        return StripeCache(
            volume,
            max_dirty_stripes=self.cache_stripes,
            evict_batch=self.evict_batch,
        )

    def build(self) -> Tuple[RAID6Volume, Optional[StripeCache]]:
        volume = self.build_volume()
        return volume, self.build_cache(volume)

    def sans_chaos(self) -> "ShardSpec":
        """The spec with its one-shot chaos hooks cleared (for restart)."""
        if (
            self.chaos_kill_after_ops is None
            and self.chaos_stall_after_ops is None
        ):
            return self
        return replace(
            self, chaos_kill_after_ops=None, chaos_stall_after_ops=None
        )


class _ChaosHook:
    """Seeded per-op fault hook a worker runs before each op."""

    def __init__(self, spec: ShardSpec) -> None:
        self.kill_at = spec.chaos_kill_after_ops
        self.stall_at = spec.chaos_stall_after_ops
        self.stall_s = spec.chaos_stall_s
        self.ops = 0

    def __call__(self) -> None:
        self.ops += 1
        if self.stall_at is not None and self.ops == self.stall_at:
            time.sleep(self.stall_s)
        if self.kill_at is not None and self.ops == self.kill_at:
            # a real kill -9: no flush, no farewell frame, no cleanup
            os.kill(os.getpid(), signal.SIGKILL)


def execute_ops(
    volume: RAID6Volume,
    cache: Optional[StripeCache],
    ops: List[ShardOp],
    op_hook=None,
    raw: bool = False,
) -> List[ShardResult]:
    """Run one coalesced batch of shard-local ops in arrival order.

    With a cache, writes buffer write-back (destaged on LRU pressure
    and at admin/close flush points, so coalescing spans batches) and
    reads are read-through with dirty overlay — a read behind a write
    sees it without forcing a destage.  Without a cache every op goes
    straight to the volume (the uncoalesced baseline).  Per-op
    failures answer that op with ERROR and keep the batch going.
    ``op_hook`` (chaos) runs before each op and may kill or stall the
    process — which is the point.

    ``raw=True`` returns READ payloads as the volume's ``np.ndarray``
    (possibly a zero-copy view of the live backing store) instead of
    ``bytes`` — the zero-copy data plane's entry point; callers own the
    copy/aliasing decision.  WRITE payloads may be any buffer (bytes or
    a shared-memory view); they are never retained past the call.
    """
    results: List[ShardResult] = []
    for op, start, count, payload in ops:
        if op_hook is not None:
            op_hook()
        try:
            if op == OP_READ:
                data = (
                    cache.read(start, count) if cache is not None
                    else volume.read(start, count)
                )
                results.append((ST_OK, data if raw else data.tobytes()))
            elif op == OP_WRITE:
                data = np.frombuffer(payload, dtype=np.uint8)
                if data.size != count * volume.element_size:
                    raise ReproError(
                        f"write payload of {data.size} bytes != "
                        f"{count} x {volume.element_size}"
                    )
                shaped = data.reshape(count, volume.element_size)
                if cache is not None:
                    cache.write(start, shaped)
                else:
                    volume.write(start, shaped.copy())
                results.append((ST_OK, b""))
            elif op == OP_SCRUB:
                if cache is not None:
                    cache.flush()
                bad = volume.scrub()
                results.append(
                    (ST_OK, json.dumps(sorted(bad)).encode())
                )
            elif op == OP_STAT:
                if cache is not None:
                    cache.flush()
                health = volume.health
                stat = {
                    "health": getattr(health, "name", str(health)),
                    "failed_disks": sorted(volume.failed_disks),
                    "num_elements": volume.num_elements,
                    "element_size": volume.element_size,
                    "num_stripes": volume.num_elements
                    // volume.layout.num_data_cells,
                }
                results.append((ST_OK, json.dumps(stat).encode()))
            elif op == OP_FAIL_DISK:
                # validate before touching anything: an out-of-range
                # index must answer a typed per-op ERROR, never escape
                # the batch as an unhandled exception
                if not 0 <= count < len(volume.disks):
                    raise ReproError(
                        f"disk {count} outside array of "
                        f"{len(volume.disks)} disks"
                    )
                if cache is not None:
                    cache.flush()
                volume.fail_disk(count)
                results.append((ST_OK, b""))
            else:
                results.append(
                    (ST_ERROR, f"unknown shard op {op}".encode())
                )
        except (ReproError, ValueError, IndexError) as exc:
            results.append((ST_ERROR, str(exc).encode()))
    return results


def _batch_writes(ops: List[ShardOp]) -> bool:
    """Whether a batch contains any state-changing op (needs an ack
    barrier in durable mode)."""
    return any(op in (OP_WRITE, OP_FAIL_DISK) for op, _, _, _ in ops)


class InlineShard:
    """Shard backend living in the serving process.

    READ results come back as ``np.ndarray`` buffers, not ``bytes`` —
    the responder hands them to ``sendmsg`` directly.  A result that
    aliases the live backing store (the volume's zero-copy full-stripe
    view) is snapshotted here: a *later* batch could rewrite the range
    before the response flushes, and the write-path copy is exactly the
    intermediate copy the zero-copy plane exists to avoid on the owned
    fast-path arrays.
    """

    def __init__(self, spec: ShardSpec) -> None:
        from repro.serve.state import build_shard_state

        self.spec = spec
        self.volume, self.cache, self.state, self.recovery = (
            build_shard_state(spec)
        )

    def execute(
        self, ops: List[ShardOp], deadline: Optional[float] = None
    ) -> List[ShardResult]:
        results = execute_ops(self.volume, self.cache, ops, raw=True)
        if self.state is not None and _batch_writes(ops):
            self.state.checkpoint()
        return [
            (status, payload.copy())
            if isinstance(payload, np.ndarray)
            and not payload.flags.writeable
            else (status, payload)
            for status, payload in results
        ]

    def close(self) -> None:
        if self.cache is not None:
            self.cache.flush()
        if self.state is not None:
            self.state.checkpoint()
            self.state.close()


def _materialise(batch, ring: Optional[PayloadRing]):
    """Resolve a descriptor batch into executable ops (worker side).

    Ring-resident WRITE payloads become live shared-memory views (the
    cache/volume write path copies per element, so the view is never
    retained), and READ reservations are noted for :func:`_marshal`.
    """
    ops: List[ShardOp] = []
    read_slots: dict = {}
    for i, (op, start, count, meta) in enumerate(batch):
        payload = meta
        if isinstance(meta, tuple) and ring is not None:
            if meta[0] == SHM_WRITE:
                payload = ring.slot_view(meta[1], meta[2])
            elif meta[0] == SHM_READ:
                read_slots[i] = meta[1]
                payload = b""
        ops.append((op, start, count, payload))
    return ops, read_slots


def _marshal(results, read_slots, ring: Optional[PayloadRing]):
    """Turn raw batch results into pipe descriptors (worker side).

    READ data lands in its reserved ring slot (one copy, volume → shm);
    anything without a slot — oversized results, control JSON, error
    messages — travels inline as before.
    """
    out: List[ShardResult] = []
    for i, (status, payload) in enumerate(results):
        if isinstance(payload, np.ndarray):
            slot = read_slots.get(i)
            if (
                slot is not None
                and status == ST_OK
                and payload.nbytes <= ring.slot_bytes
            ):
                n = ring.write_into(slot, np.ascontiguousarray(payload))
                out.append((status, (SHM_RESULT, slot, n)))
            else:
                out.append((status, payload.tobytes()))
        else:
            out.append((status, payload))
    return out


def _shard_worker(  # pragma: no cover — child process
    conn, spec: ShardSpec, ring: Optional[PayloadRing] = None
) -> None:
    """Worker-process loop: recv a batch, execute, send the results.

    Durable mode checkpoints (ledger sync + incremental persist) after
    every writing batch *before* answering — the ack barrier.  An empty
    batch answers ``[]`` immediately (heartbeat).  The chaos hook may
    SIGKILL or stall the process mid-batch; that is the fault the
    parent-side deadline + supervisor machinery exists to absorb.  The
    worker only ever reads/writes ring slots the parent leased to this
    batch — allocation and reclamation stay parent-side, so a worker
    death cannot leak shared memory.
    """
    from repro.serve.state import build_shard_state

    volume, cache, state, _ = build_shard_state(spec)
    hook = (
        _ChaosHook(spec)
        if spec.chaos_kill_after_ops is not None
        or spec.chaos_stall_after_ops is not None
        else None
    )
    prof = None
    if spec.profile_path:
        import cProfile

        prof = cProfile.Profile()
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg is None:
            if cache is not None:
                cache.flush()
            if state is not None:
                state.checkpoint()
                state.close()
            if prof is not None:
                prof.dump_stats(spec.profile_path)
            conn.send(None)
            break
        if msg == []:  # heartbeat: prove liveness without volume work
            conn.send([])
            continue
        try:
            if prof is not None:
                prof.enable()
            ops, read_slots = _materialise(msg, ring)
            results = execute_ops(volume, cache, ops, op_hook=hook,
                                  raw=True)
            if state is not None and _batch_writes(ops):
                state.checkpoint()
            reply = _marshal(results, read_slots, ring)
            if prof is not None:
                prof.disable()
            conn.send(reply)
        except BaseException:  # noqa: BLE001 — marshalled to the parent
            if prof is not None:
                prof.disable()
            conn.send((WORKER_ERROR, traceback.format_exc()))
    conn.close()


class ProcessShard:
    """Shard backend in a forked worker process.

    Fork **before** the asyncio loop starts (see
    :func:`repro.serve.server.make_backends`): forking a running loop
    duplicates its internal pipes into the child.  The child builds its
    own volume from the picklable spec, so no stripe state crosses the
    process boundary — only op tuples and result bytes.

    ``recv_timeout`` bounds how long one batch may take before
    :meth:`execute` gives up with a typed
    :class:`~repro.exceptions.ShardTimeoutError` — a hung worker can no
    longer wedge the coalescer thread forever.  After a timeout (or a
    crash) call :meth:`restart`: it hard-kills the incarnation, clears
    any one-shot chaos hooks from the spec, and forks a fresh worker —
    which, in durable mode, reloads the last checkpoint and replays the
    ack-intent ledger.
    """

    def __init__(
        self,
        spec: ShardSpec,
        recv_timeout: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.recv_timeout = recv_timeout
        self.restarts = 0
        self._ring: Optional[PayloadRing] = None
        self._spawn(spec)

    def _spawn(self, spec: ShardSpec) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self._ring = self._make_ring(spec)
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker, args=(child, spec, self._ring),
            daemon=True,
        )
        self._proc.start()
        child.close()

    @staticmethod
    def _make_ring(spec: ShardSpec) -> Optional[PayloadRing]:
        if spec.ring_slots <= 0:
            return None
        slot_bytes = spec.ring_slot_bytes or max(
            4096, 64 * spec.element_size
        )
        return PayloadRing(spec.ring_slots, slot_bytes)

    @property
    def ring(self) -> Optional[PayloadRing]:
        """The live incarnation's payload ring (tests, introspection)."""
        return self._ring

    def _name(self) -> str:
        return f"pid={self._proc.pid}"

    def _recv(self, timeout: Optional[float]):
        """One guarded reply read: poll within the deadline, then recv."""
        if timeout is not None:
            deadline = time.monotonic() + timeout
            remaining = timeout
            while True:
                try:
                    if self._conn.poll(max(remaining, 0.0)):
                        break
                except (BrokenPipeError, OSError) as exc:
                    raise ShardCrashedError(self._name(), str(exc)) from exc
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardTimeoutError(self._name(), timeout)
        try:
            return self._conn.recv()
        except EOFError as exc:
            raise ShardCrashedError(
                self._name(), "worker closed the pipe mid-batch"
            ) from exc
        except (BrokenPipeError, OSError) as exc:
            raise ShardCrashedError(self._name(), str(exc)) from exc

    def _timeout_for(self, deadline: Optional[float]) -> Optional[float]:
        """Effective batch timeout: recv_timeout ∧ remaining deadline."""
        timeout = self.recv_timeout
        if deadline is not None:
            remaining = deadline - time.monotonic()
            timeout = (
                remaining if timeout is None else min(timeout, remaining)
            )
            timeout = max(timeout, 0.001)
        return timeout

    def _prepare(self, ops: List[ShardOp]):
        """Stage a batch onto the ring; split dispatch from local answers.

        Returns ``(downs, idx, local, write_slots, read_slots)``:
        ``downs`` are the pipe descriptors, ``idx`` maps them back to
        op positions, ``local`` holds ops answered without dispatch —
        ring exhaustion becomes a typed BUSY (retryable, O(1)) rather
        than a blocked coalescer thread.  Payloads that cannot fit any
        slot fall back to inline pipe bytes, so oversized ops still
        execute.
        """
        ring = self._ring
        local: dict = {}
        downs: List[tuple] = []
        idx: List[int] = []
        write_slots: List[int] = []
        read_slots: dict = {}
        if ring is None:
            return list(ops), list(range(len(ops))), local, \
                write_slots, read_slots
        esize = self.spec.element_size
        for i, (op, start, count, payload) in enumerate(ops):
            meta = payload
            if op == OP_WRITE:
                slot = ring.alloc(len(payload))
                if slot is not None:
                    ring.write_into(slot, payload)
                    write_slots.append(slot)
                    meta = (SHM_WRITE, slot, len(payload))
                elif len(payload) <= ring.slot_bytes:
                    local[i] = (ST_BUSY, b"payload ring full")
                    continue
            elif op == OP_READ:
                expected = count * esize
                slot = ring.alloc(expected)
                if slot is not None:
                    read_slots[i] = slot
                    meta = (SHM_READ, slot)
                elif expected <= ring.slot_bytes:
                    local[i] = (ST_BUSY, b"payload ring full")
                    continue
            downs.append((op, start, count, meta))
            idx.append(i)
        return downs, idx, local, write_slots, read_slots

    def _release(self, write_slots, read_slots) -> None:
        if self._ring is None:
            return
        for slot in write_slots:
            self._ring.free(slot)
        for slot in read_slots.values():
            self._ring.free(slot)

    def execute(
        self, ops: List[ShardOp], deadline: Optional[float] = None
    ) -> List[ShardResult]:
        downs, idx, local, write_slots, read_slots = self._prepare(ops)
        if not downs:
            # every op answered locally (ring exhausted) — an empty
            # pipe batch would read as a heartbeat, so don't send one
            return [local[i] for i in range(len(ops))]
        try:
            try:
                self._conn.send(downs)
            except (BrokenPipeError, OSError) as exc:
                raise ShardCrashedError(self._name(), str(exc)) from exc
            reply = self._recv(self._timeout_for(deadline))
        except BaseException:
            # crash/timeout: the incarnation is done for (restart will
            # retire the whole ring) — drop this batch's leases so the
            # retired segment can unmap once pending responses flush
            self._release(write_slots, read_slots)
            raise
        if (
            isinstance(reply, tuple)
            and len(reply) == 2
            and reply[0] == WORKER_ERROR
        ):
            self._release(write_slots, read_slots)
            raise RuntimeError(f"shard worker failed:\n{reply[1]}")
        results: List[ShardResult] = [None] * len(ops)  # type: ignore
        for i, answered in local.items():
            results[i] = answered
        for j, (status, payload) in zip(idx, reply):
            if (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == SHM_RESULT
            ):
                _, slot, length = payload
                results[j] = (
                    status, self._ring.lease_slice(slot, length)
                )
                read_slots.pop(j, None)  # ownership moved to the slice
            else:
                results[j] = (status, payload)
        # write payloads were consumed during execute; reserved read
        # slots the worker didn't use (errors, oversize) come back too
        self._release(write_slots, read_slots)
        return results

    def ping(self, timeout: Optional[float] = None) -> None:
        """Heartbeat: an empty batch must echo back within ``timeout``.

        Raises the same typed errors as :meth:`execute`; a reply other
        than ``[]`` means the pipe is desynchronised (stale late reply
        after a timeout), which also counts as a crash.
        """
        try:
            self._conn.send([])
        except (BrokenPipeError, OSError) as exc:
            raise ShardCrashedError(self._name(), str(exc)) from exc
        reply = self._recv(timeout if timeout is not None
                           else self.recv_timeout)
        if reply != []:
            raise ShardCrashedError(
                self._name(), f"heartbeat answered {type(reply).__name__}"
            )

    def alive(self) -> bool:
        return self._proc.is_alive()

    def kill(self) -> None:
        """Chaos hook: SIGKILL the worker from the parent side."""
        self._proc.kill()

    def restart(self) -> None:
        """Hard-kill the incarnation and fork a fresh worker.

        One-shot chaos hooks are cleared so the replacement does not
        re-die at the same op count; in durable mode the replacement
        replays base + delta records and the ack-intent ledger via
        mount-time recovery.  The dead incarnation's payload ring is
        retired — unlinked immediately (no ``/dev/shm`` leak even
        after ``kill -9``), unmapped once in-flight responses release
        their slices — and the replacement gets a fresh one.
        """
        try:
            self._conn.close()
        except OSError:  # pragma: no cover — already torn
            pass
        if self._proc.is_alive():
            self._proc.kill()
        self._proc.join(timeout=10)
        if self._ring is not None:
            self._ring.retire()
        self.restarts += 1
        self._spawn(self.spec.sans_chaos())

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self._conn.send(None)
                self._recv(self.recv_timeout)
            except (ShardCrashedError, ShardTimeoutError, OSError):
                pass
        try:
            self._conn.close()
        except OSError:  # pragma: no cover — already torn
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover — stuck worker
            self._proc.terminate()
            self._proc.join(timeout=10)
        if self._ring is not None:
            self._ring.retire()


BACKENDS = {"inline": InlineShard, "process": ProcessShard}
