"""Shard backends: one volume + write-back cache per shard.

A shard is a :class:`RAID6Volume` plus a :class:`StripeCache`, executed
either in-process (:class:`InlineShard`) or in a forked worker process
(:class:`ProcessShard`) so serving is not bound by the parent's GIL.
Either way, :func:`execute_ops` is the single entry point: it runs one
*batch* of shard-local ops in arrival order, buffering writes through
the cache and destaging the whole batch at the end — that coalescing is
what routes serving traffic onto the volume's batched RMW / full-stripe
/ destage paths instead of one parity round-trip per request.

Backends promise **serialised** batches: the coalescer drives each
shard from a single-thread executor, so ``execute`` is never entered
concurrently.  Cross-shard concurrency needs no coordination at all —
shards own disjoint volumes.

The process backend speaks length-delimited pickles over a
:class:`multiprocessing.Pipe`.  Worker faults come back as a typed
``("__shard_error__", traceback)`` marker rather than a torn pipe, so
the server can answer ERROR frames and keep serving other shards.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.array import RAID6Volume
from repro.array.cache import StripeCache
from repro.codes.registry import make_code
from repro.exceptions import ReproError
from repro.serve.protocol import (
    OP_FAIL_DISK,
    OP_READ,
    OP_SCRUB,
    OP_STAT,
    OP_WRITE,
    ST_ERROR,
    ST_OK,
)

#: One shard-local op: (op, start, count, payload).
ShardOp = Tuple[int, int, int, bytes]

#: One result: (status, payload).
ShardResult = Tuple[int, bytes]

#: Typed marker the worker process sends when a batch raises.
WORKER_ERROR = "__shard_error__"


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to build one shard's volume (picklable).

    ``write_back=True`` (the serving architecture) buffers writes in
    the stripe cache and destages on pressure — cross-batch coalescing
    is where the ops/s win comes from, and reads stay correct through
    the dirty overlay.  ``write_back=False`` is the naive baseline:
    every op goes straight to the volume, one parity round-trip per
    write.
    """

    code: str = "dcode"
    p: int = 7
    num_stripes: int = 64
    element_size: int = 64
    workers: Optional[int] = None
    process_pool: Optional[bool] = None
    cache_stripes: int = 16
    evict_batch: int = 4
    write_back: bool = True

    def build(self) -> Tuple[RAID6Volume, Optional[StripeCache]]:
        volume = RAID6Volume(
            make_code(self.code, self.p),
            num_stripes=self.num_stripes,
            element_size=self.element_size,
            workers=self.workers,
            process_pool=self.process_pool,
        )
        cache = (
            StripeCache(
                volume,
                max_dirty_stripes=self.cache_stripes,
                evict_batch=self.evict_batch,
            )
            if self.write_back else None
        )
        return volume, cache


def execute_ops(
    volume: RAID6Volume,
    cache: Optional[StripeCache],
    ops: List[ShardOp],
) -> List[ShardResult]:
    """Run one coalesced batch of shard-local ops in arrival order.

    With a cache, writes buffer write-back (destaged on LRU pressure
    and at admin/close flush points, so coalescing spans batches) and
    reads are read-through with dirty overlay — a read behind a write
    sees it without forcing a destage.  Without a cache every op goes
    straight to the volume (the uncoalesced baseline).  Per-op
    failures answer that op with ERROR and keep the batch going.
    """
    results: List[ShardResult] = []
    for op, start, count, payload in ops:
        try:
            if op == OP_READ:
                data = (
                    cache.read(start, count) if cache is not None
                    else volume.read(start, count)
                )
                results.append((ST_OK, data.tobytes()))
            elif op == OP_WRITE:
                data = np.frombuffer(payload, dtype=np.uint8)
                if data.size != count * volume.element_size:
                    raise ReproError(
                        f"write payload of {data.size} bytes != "
                        f"{count} x {volume.element_size}"
                    )
                shaped = data.reshape(count, volume.element_size)
                if cache is not None:
                    cache.write(start, shaped)
                else:
                    volume.write(start, shaped.copy())
                results.append((ST_OK, b""))
            elif op == OP_SCRUB:
                if cache is not None:
                    cache.flush()
                bad = volume.scrub()
                results.append(
                    (ST_OK, json.dumps(sorted(bad)).encode())
                )
            elif op == OP_STAT:
                if cache is not None:
                    cache.flush()
                health = volume.health
                stat = {
                    "health": getattr(health, "name", str(health)),
                    "failed_disks": sorted(volume.failed_disks),
                    "num_elements": volume.num_elements,
                    "element_size": volume.element_size,
                    "num_stripes": volume.num_elements
                    // volume.layout.num_data_cells,
                }
                results.append((ST_OK, json.dumps(stat).encode()))
            elif op == OP_FAIL_DISK:
                if cache is not None:
                    cache.flush()
                volume.fail_disk(count)
                results.append((ST_OK, b""))
            else:
                results.append(
                    (ST_ERROR, f"unknown shard op {op}".encode())
                )
        except (ReproError, ValueError) as exc:
            results.append((ST_ERROR, str(exc).encode()))
    return results


class InlineShard:
    """Shard backend living in the serving process."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.volume, self.cache = spec.build()

    def execute(self, ops: List[ShardOp]) -> List[ShardResult]:
        return execute_ops(self.volume, self.cache, ops)

    def close(self) -> None:
        if self.cache is not None:
            self.cache.flush()


def _shard_worker(conn, spec: ShardSpec) -> None:  # pragma: no cover — child
    """Worker-process loop: recv a batch, execute, send the results."""
    volume, cache = spec.build()
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg is None:
            if cache is not None:
                cache.flush()
            conn.send(None)
            break
        try:
            conn.send(execute_ops(volume, cache, msg))
        except BaseException:  # noqa: BLE001 — marshalled to the parent
            conn.send((WORKER_ERROR, traceback.format_exc()))
    conn.close()


class ProcessShard:
    """Shard backend in a forked worker process.

    Fork **before** the asyncio loop starts (see
    :func:`repro.serve.server.make_backends`): forking a running loop
    duplicates its internal pipes into the child.  The child builds its
    own volume from the picklable spec, so no stripe state crosses the
    process boundary — only op tuples and result bytes.
    """

    def __init__(self, spec: ShardSpec) -> None:
        import multiprocessing

        self.spec = spec
        ctx = multiprocessing.get_context("fork")
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker, args=(child, spec), daemon=True
        )
        self._proc.start()
        child.close()

    def execute(self, ops: List[ShardOp]) -> List[ShardResult]:
        self._conn.send(ops)
        reply = self._conn.recv()
        if (
            isinstance(reply, tuple)
            and len(reply) == 2
            and reply[0] == WORKER_ERROR
        ):
            raise RuntimeError(f"shard worker failed:\n{reply[1]}")
        return reply

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self._conn.send(None)
                self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._conn.close()
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover — stuck worker
            self._proc.terminate()
            self._proc.join(timeout=10)


BACKENDS = {"inline": InlineShard, "process": ProcessShard}
