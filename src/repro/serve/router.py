"""Block-range → shard routing.

The logical address space is divided into equal contiguous bands, one
per shard (shard ``i`` owns ``[i * cap, (i + 1) * cap)`` elements).
Contiguous bands — rather than element-level striping — keep a client's
sequential run on one shard, so the coalescer can feed it to the
volume's tensor / batched paths as a single extent instead of a comb of
single elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import AddressError
from repro.util.validation import require_positive

#: One routed extent: (shard, local_start, count, payload_offset) —
#: ``payload_offset`` is the element offset of this extent inside the
#: original request, used to slice write payloads and to reassemble
#: read results in request order.
Extent = Tuple[int, int, int, int]


@dataclass(frozen=True)
class ShardRouter:
    """Maps logical element ranges onto shard-local ranges."""

    num_shards: int
    elements_per_shard: int

    def __post_init__(self) -> None:
        require_positive(self.num_shards, "num_shards")
        require_positive(self.elements_per_shard, "elements_per_shard")

    @property
    def num_elements(self) -> int:
        """Total logical elements across all shards."""
        return self.num_shards * self.elements_per_shard

    def shard_of(self, element: int) -> int:
        """The shard owning logical ``element``."""
        if not 0 <= element < self.num_elements:
            raise AddressError(
                f"element {element} outside volume of {self.num_elements}"
            )
        return element // self.elements_per_shard

    def split(self, start: int, count: int) -> List[Extent]:
        """Split ``[start, start + count)`` into per-shard extents.

        Extents come back in address order, cover the range exactly,
        and never cross a shard boundary.  A range touching ``k`` shard
        bands yields exactly ``k`` extents.
        """
        if count <= 0:
            raise AddressError(f"count must be positive, got {count}")
        if start < 0 or start + count > self.num_elements:
            raise AddressError(
                f"range [{start}, {start + count}) outside volume of "
                f"{self.num_elements} elements"
            )
        cap = self.elements_per_shard
        extents: List[Extent] = []
        offset = 0
        pos = start
        remaining = count
        while remaining > 0:
            shard = pos // cap
            local = pos - shard * cap
            take = min(remaining, cap - local)
            extents.append((shard, local, take, offset))
            pos += take
            offset += take
            remaining -= take
        return extents
