"""Seeded open- and closed-loop load generators for the block service.

Determinism contract (CI replays depend on it): every client draws its
op stream from ``default_rng([seed, client, 0])`` and its think/backoff
times from ``default_rng([seed, client, 1])`` — *separate* streams, so
a BUSY retry or timing wobble never perturbs which ops are issued or
what bytes they carry.  Clients own disjoint address regions, so the
final volume image is a pure function of ``(seed, clients, ops)`` —
identical across serial vs. 4-shard runs, which is what the
byte-equivalence checks assert.

Two generator shapes:

* :func:`run_closed_loop` — N think-time clients, each issuing its next
  op only after the previous completes (throughput follows service
  rate; the shape used for the committed ops/s floors);
* :func:`run_open_loop` — Poisson arrivals at a fixed offered rate,
  independent of completions (the shape that exposes queueing collapse
  and BUSY shedding).

Both return a :class:`LoadReport` with ops/s and p50/p95/p99 latency,
plus per-client write logs for replaying against a direct
:class:`~repro.array.volume.RAID6Volume` (:func:`replay_writes`).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve import protocol
from repro.serve.protocol import (
    OP_READ,
    OP_WRITE,
    RETRYABLE,
    ST_BUSY,
    ST_DEADLINE,
    ST_OK,
    ST_RETRY,
    Request,
)

#: One logged write: (start, payload) in issue order.
WriteLog = List[Tuple[int, bytes]]


class BlockClient:
    """Minimal asyncio client for the block protocol."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "BlockClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    def send_nowait(
        self,
        op: int,
        start: int = 0,
        count: int = 0,
        payload: bytes = b"",
        tenant: int = 0,
        deadline_ms: int = 0,
    ) -> None:
        """Buffer a request frame without flushing the transport.

        Lets a pipelining caller queue several frames and pay one
        :meth:`flush` for the burst.  The header and the payload are
        written as separate buffers (:func:`protocol.encode_request_parts`),
        so WRITE payloads reach the transport without an intermediate
        frame concatenation."""
        head, body = protocol.encode_request_parts(
            Request(op, tenant, start, count, payload, deadline_ms)
        )
        self._writer.write(head)
        if body:
            self._writer.write(body)

    async def flush(self) -> None:
        await self._writer.drain()

    async def send(
        self,
        op: int,
        start: int = 0,
        count: int = 0,
        payload: bytes = b"",
        tenant: int = 0,
        deadline_ms: int = 0,
    ) -> None:
        """Issue a request without waiting for its response.

        The server answers in request order per connection, so a
        pipelining caller pairs each :meth:`recv` with the oldest
        outstanding :meth:`send`."""
        self.send_nowait(op, start, count, payload, tenant, deadline_ms)
        await self.flush()

    async def recv(self) -> Tuple[int, bytes]:
        """Receive the response to the oldest outstanding request."""
        body = await protocol.read_frame(self._reader)
        if body is None:
            raise ConnectionError("server closed the connection")
        return protocol.decode_response(body)

    def has_buffered_response(self) -> bool:
        """True when a whole response frame is already buffered, so
        :meth:`recv` would return without blocking.

        Peeks the stream reader's internal buffer — a harness-only
        shortcut that lets a pipelining client drain a coalesced burst
        of responses before paying one flush for the refills."""
        buf = self._reader._buffer
        if len(buf) < 4:
            return False
        return len(buf) >= 4 + int.from_bytes(buf[:4], "big")

    async def request(
        self,
        op: int,
        start: int = 0,
        count: int = 0,
        payload: bytes = b"",
        tenant: int = 0,
        deadline_ms: int = 0,
    ) -> Tuple[int, bytes]:
        await self.send(op, start, count, payload, tenant, deadline_ms)
        return await self.recv()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generator run."""

    ops: int = 0
    reads: int = 0
    writes: int = 0
    busy: int = 0
    #: Ops re-issued after a typed RETRY (shard crashed / restarting).
    retries: int = 0
    #: Ops re-issued after the server dropped them on deadline.
    deadline_misses: int = 0
    errors: int = 0
    verify_failures: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    duration_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    write_logs: Dict[int, WriteLog] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.duration_s if self.duration_s > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.array(self.latencies_ms), q))

    def to_dict(self) -> dict:
        return {
            "ops": self.ops,
            "reads": self.reads,
            "writes": self.writes,
            "busy": self.busy,
            "retries": self.retries,
            "deadline_misses": self.deadline_misses,
            "errors": self.errors,
            "verify_failures": self.verify_failures,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "duration_s": round(self.duration_s, 4),
            "ops_per_sec": round(self.ops_per_sec, 2),
            "p50_ms": round(self.percentile_ms(50), 3),
            "p95_ms": round(self.percentile_ms(95), 3),
            "p99_ms": round(self.percentile_ms(99), 3),
        }


def _merge(total: LoadReport, part: LoadReport) -> None:
    total.ops += part.ops
    total.reads += part.reads
    total.writes += part.writes
    total.busy += part.busy
    total.retries += part.retries
    total.deadline_misses += part.deadline_misses
    total.errors += part.errors
    total.verify_failures += part.verify_failures
    total.bytes_read += part.bytes_read
    total.bytes_written += part.bytes_written
    total.latencies_ms.extend(part.latencies_ms)
    total.write_logs.update(part.write_logs)


class _ClientPlan:
    """The deterministic op stream of one client."""

    def __init__(
        self,
        client_id: int,
        seed: int,
        clients: int,
        num_elements: int,
        element_size: int,
        read_frac: float,
        max_extent: int,
    ) -> None:
        region = num_elements // clients
        if region < max_extent:
            raise ValueError(
                f"{clients} clients over {num_elements} elements leaves "
                f"regions of {region} < max extent {max_extent}"
            )
        self.client_id = client_id
        self.base = client_id * region
        self.region = region
        self.element_size = element_size
        self.read_frac = read_frac
        self.max_extent = max_extent
        self.ops_rng = np.random.default_rng([seed, client_id, 0])
        self.think_rng = np.random.default_rng([seed, client_id, 1])
        self._buf: List[Tuple[int, int, int, bytes]] = []

    def _refill(self, n: int = 256) -> None:
        """Draw ``n`` ops in four vectorised rng calls.

        Scalar per-op draws cost more than the protocol round-trip they
        feed at high client counts, so the stream is generated in
        chunks: counts, start fractions, read/write coin flips, and one
        payload blob that write ops slice in order.  The stream stays a
        pure function of ``(seed, client_id)``; overdraw past the last
        issued op is simply discarded."""
        rng = self.ops_rng
        counts = rng.integers(1, self.max_extent + 1, size=n)
        fracs = rng.random(n)
        starts = self.base + (
            fracs * (self.region - counts + 1)
        ).astype(np.int64)
        is_read = rng.random(n) < self.read_frac
        esize = self.element_size
        blob = rng.integers(
            0, 256,
            int(counts[~is_read].sum()) * esize,
            dtype=np.uint8,
        ).tobytes()
        ops: List[Tuple[int, int, int, bytes]] = []
        offset = 0
        for k in range(n):
            count, start = int(counts[k]), int(starts[k])
            if is_read[k]:
                ops.append((OP_READ, start, count, b""))
            else:
                size = count * esize
                ops.append(
                    (OP_WRITE, start, count, blob[offset:offset + size])
                )
                offset += size
        ops.reverse()
        self._buf = ops

    def next_op(self) -> Tuple[int, int, int, bytes]:
        """Pop the next (op, start, count, payload) — ops stream only."""
        if not self._buf:
            self._refill()
        return self._buf.pop()

    def backoff_s(self, attempt: int) -> float:
        """Jittered exponential backoff for any retryable status
        (BUSY / RETRY / DEADLINE) — drawn from the *think* stream only,
        so retry timing never perturbs the op stream."""
        cap = min(0.05, 0.001 * (2 ** min(attempt, 5)))
        return float(self.think_rng.random()) * cap

    def think_s(self, think_time: float) -> float:
        if think_time <= 0:
            return 0.0
        return float(self.think_rng.exponential(think_time))


def _count_retryable(report: LoadReport, status: int) -> None:
    """Book one retryable response into its typed counter."""
    if status == ST_BUSY:
        report.busy += 1
    elif status == ST_RETRY:
        report.retries += 1
    elif status == ST_DEADLINE:
        report.deadline_misses += 1


async def _run_op(
    client: BlockClient,
    plan: _ClientPlan,
    op_tuple: Tuple[int, int, int, bytes],
    shadow: Dict[int, bytes],
    report: LoadReport,
    verify: bool,
    tenant: int,
    deadline_ms: int = 0,
) -> None:
    """Issue one op, retrying any retryable status (BUSY / RETRY /
    DEADLINE) with jittered backoff; record latency and shadow state."""
    op, start, count, payload = op_tuple
    attempt = 0
    t0 = time.perf_counter()
    while True:
        status, answer = await client.request(
            op, start, count, payload, tenant=tenant,
            deadline_ms=deadline_ms,
        )
        if status not in RETRYABLE:
            break
        _count_retryable(report, status)
        attempt += 1
        await asyncio.sleep(plan.backoff_s(attempt))
    report.latencies_ms.append((time.perf_counter() - t0) * 1e3)
    _record(plan, op_tuple, status, answer, shadow, report, verify)


def _record(
    plan: _ClientPlan,
    op_tuple: Tuple[int, int, int, bytes],
    status: int,
    answer: bytes,
    shadow: Dict[int, bytes],
    report: LoadReport,
    verify: bool,
) -> None:
    """Book one completed op into the report and the shadow image."""
    op, start, count, payload = op_tuple
    esize = plan.element_size
    report.ops += 1
    if status != ST_OK:
        report.errors += 1
        return
    if op == OP_READ:
        report.reads += 1
        report.bytes_read += len(answer)
        if verify:
            for k in range(count):
                want = shadow.get(start + k)
                got = answer[k * esize:(k + 1) * esize]
                if want is not None and want != got:
                    report.verify_failures += 1
    else:
        report.writes += 1
        report.bytes_written += len(payload)
        log = report.write_logs.setdefault(plan.client_id, [])
        log.append((start, payload))
        if verify:
            for k in range(count):
                shadow[start + k] = payload[k * esize:(k + 1) * esize]


async def run_closed_loop(
    host: str,
    port: int,
    *,
    num_elements: int,
    element_size: int,
    clients: int = 4,
    ops_per_client: int = 100,
    read_frac: float = 0.5,
    seed: int = 2015,
    think_time: float = 0.0,
    duration: Optional[float] = None,
    max_extent: int = 8,
    window: int = 1,
    verify: bool = True,
    deadline_ms: int = 0,
) -> LoadReport:
    """N think-time clients, each keeping ``window`` ops in flight.

    ``window`` is the per-client queue depth (1 = strict one-at-a-time
    closed loop; real block initiators pipeline).  Requests on one
    connection complete in order, so read-your-writes holds at any
    window — except for an op re-issued after a retryable status (BUSY,
    RETRY, DEADLINE), which re-enters behind ops already in flight
    (verification runs therefore disable rate limiting and chaos runs
    verify via final-image equivalence instead).  ``duration`` (seconds)
    stops issuing early without changing which ops *would* be issued —
    the op streams stay a pure function of the seed.  ``deadline_ms``
    stamps every request with a per-request deadline budget.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    deadline = (
        None if duration is None else time.perf_counter() + duration
    )
    total = LoadReport()
    t0 = time.perf_counter()

    async def one_client(cid: int) -> LoadReport:
        plan = _ClientPlan(
            cid, seed, clients, num_elements, element_size,
            read_frac, max_extent,
        )
        client = await BlockClient.connect(host, port)
        report = LoadReport()
        shadow: Dict[int, bytes] = {}
        inflight: List[Tuple[Tuple[int, int, int, bytes], float]] = []
        retries: List[Tuple[Tuple[int, int, int, bytes], float]] = []
        issued = 0
        attempt = 0
        try:
            while True:
                expired = (
                    deadline is not None
                    and time.perf_counter() >= deadline
                )
                sent = 0
                while len(inflight) < window and (
                    retries or (issued < ops_per_client and not expired)
                ):
                    if retries:
                        op_tuple, t_first = retries.pop(0)
                    else:
                        op_tuple = plan.next_op()
                        t_first = time.perf_counter()
                        issued += 1
                    op, start, count, payload = op_tuple
                    client.send_nowait(
                        op, start, count, payload, tenant=cid,
                        deadline_ms=deadline_ms,
                    )
                    sent += 1
                    inflight.append((op_tuple, t_first))
                if sent:
                    await client.flush()
                if not inflight:
                    break
                # Drain the whole buffered burst before refilling:
                # coalesced servers answer several frames per write,
                # and paying one refill flush per *burst* instead of
                # per op keeps the syscall count proportional to
                # batches, not ops.
                blocking = True
                while inflight and (
                    blocking or client.has_buffered_response()
                ):
                    blocking = False
                    status, answer = await client.recv()
                    op_tuple, t_first = inflight.pop(0)
                    if status in RETRYABLE:
                        _count_retryable(report, status)
                        attempt += 1
                        retries.append((op_tuple, t_first))
                        await asyncio.sleep(plan.backoff_s(attempt))
                        break
                    attempt = 0
                    report.latencies_ms.append(
                        (time.perf_counter() - t_first) * 1e3
                    )
                    _record(
                        plan, op_tuple, status, answer, shadow, report,
                        verify,
                    )
                    pause = plan.think_s(think_time)
                    if pause > 0:
                        await asyncio.sleep(pause)
                        break
        finally:
            await client.close()
        return report

    parts = await asyncio.gather(
        *[one_client(cid) for cid in range(clients)]
    )
    for part in parts:
        _merge(total, part)
    total.duration_s = time.perf_counter() - t0
    return total


async def run_open_loop(
    host: str,
    port: int,
    *,
    num_elements: int,
    element_size: int,
    rate: float,
    duration: float,
    clients: int = 4,
    read_frac: float = 0.5,
    seed: int = 2015,
    max_extent: int = 8,
    max_inflight: int = 512,
    verify: bool = False,
    deadline_ms: int = 0,
) -> LoadReport:
    """Poisson arrivals at ``rate`` ops/s total for ``duration`` seconds.

    Arrivals don't wait for completions (open loop), so offered load
    beyond capacity shows up as queueing latency and BUSY shedding
    rather than a slower generator.  ``max_inflight`` caps runaway task
    growth when the server is saturated.
    """
    arrivals = np.random.default_rng([seed, 0xA11])
    total = LoadReport()
    plans = [
        _ClientPlan(
            cid, seed, clients, num_elements, element_size,
            read_frac, max_extent,
        )
        for cid in range(clients)
    ]
    conns = await asyncio.gather(*[
        BlockClient.connect(host, port) for _ in range(clients)
    ])
    shadows: List[Dict[int, bytes]] = [{} for _ in range(clients)]
    locks = [asyncio.Lock() for _ in range(clients)]
    gate = asyncio.Semaphore(max_inflight)
    tasks: List["asyncio.Task"] = []
    t0 = time.perf_counter()

    async def fire(cid: int, op_tuple) -> None:
        async with gate:
            # one connection per client: serialise its frames
            async with locks[cid]:
                await _run_op(
                    conns[cid], plans[cid], op_tuple, shadows[cid],
                    total, verify, tenant=cid, deadline_ms=deadline_ms,
                )

    try:
        now = 0.0
        i = 0
        while now < duration:
            cid = i % clients
            tasks.append(
                asyncio.get_running_loop().create_task(
                    fire(cid, plans[cid].next_op())
                )
            )
            i += 1
            gap = float(arrivals.exponential(1.0 / rate))
            now += gap
            await asyncio.sleep(gap)
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        for conn in conns:
            await conn.close()
    total.duration_s = time.perf_counter() - t0
    return total


def replay_writes(volume, write_logs: Dict[int, WriteLog]) -> None:
    """Replay the generators' write logs into a direct volume.

    Clients own disjoint regions, so replaying per client in issue
    order (any client order) reproduces the served image exactly.
    """
    esize = volume.element_size
    for cid in sorted(write_logs):
        for start, payload in write_logs[cid]:
            data = np.frombuffer(payload, dtype=np.uint8)
            volume.write(start, data.reshape(-1, esize).copy())


async def fetch_image(
    host: str,
    port: int,
    *,
    num_elements: int,
    chunk: int = 512,
    tenant: int = 0,
) -> bytes:
    """Read the whole address space through the protocol."""
    client = await BlockClient.connect(host, port)
    out = []
    try:
        for start in range(0, num_elements, chunk):
            count = min(chunk, num_elements - start)
            while True:
                status, payload = await client.request(
                    OP_READ, start, count, tenant=tenant
                )
                if status not in RETRYABLE:
                    break
                await asyncio.sleep(0.002)
            if status != ST_OK:
                raise RuntimeError(
                    f"read [{start}, {start + count}) failed: "
                    f"{payload.decode(errors='replace')}"
                )
            out.append(payload)
    finally:
        await client.close()
    return b"".join(out)
