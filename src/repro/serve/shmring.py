"""Shared-memory payload ring: the zero-copy half of the shard IPC.

A :class:`ProcessShard` used to pickle every WRITE payload into the
pipe and every READ result back out of it — five buffer copies per op
before a byte reached the socket.  The ring replaces the bulk-data leg:
the parent creates one named ``multiprocessing.shared_memory`` segment
per worker incarnation, carved into fixed-size slots, and the pipe
carries only small control descriptors (op headers plus ``(slot,
length)`` references).  WRITE payloads are copied once into a slot
before dispatch; READ results are copied once from the volume into a
slot the parent reserved, then handed to the socket with ``sendmsg`` —
no pickling of bulk data in either direction.

Ownership rules keep the lifecycle crash-proof:

* the **parent allocates and frees every slot**; the worker only reads
  and writes slot contents it was handed.  A ``kill -9`` of the worker
  therefore cannot leak slots, let alone segments;
* the segment is created *before* the fork and inherited through it —
  the worker never attaches by name, so there is no window where a
  crashed worker holds the only reference;
* the parent is the only process that ever calls ``unlink``.
  :meth:`PayloadRing.retire` unlinks immediately (the ``/dev/shm``
  entry disappears right away, which is what the chaos grid's leak
  check observes) and defers the local ``close`` until every leased
  :class:`ShmSlice` has been released — a response still waiting in the
  server's scatter-gather flush buffer keeps its bytes mapped, and the
  mapping goes away with the last release.

Slot exhaustion is *typed*, not blocking: :meth:`PayloadRing.alloc`
returns ``None`` and the shard answers the op ``BUSY`` — a retryable
status the clients already back off on — instead of wedging the
coalescer thread behind a full ring.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from multiprocessing import shared_memory
from typing import Optional

from repro.util.validation import require_positive

#: Every ring segment name starts with this, so tests and the chaos
#: harness can sweep ``/dev/shm`` for leaked segments by prefix.
SHM_PREFIX = "repro_ring"

_ring_counter = itertools.count()


class ShmSlice:
    """A leased view of one ring slot (a READ result in flight).

    Created by the parent when a worker answers a READ through the
    ring.  Holds the slot until :meth:`release` — which the server
    calls after the response bytes left the socket (or immediately,
    when the connection died first).  Release is idempotent.
    """

    __slots__ = ("_ring", "slot", "length", "_view")

    def __init__(self, ring: "PayloadRing", slot: int, length: int) -> None:
        self._ring = ring
        self.slot = slot
        self.length = length
        self._view: Optional[memoryview] = None

    @property
    def view(self) -> memoryview:
        """1-D byte view of the slot contents (no copy)."""
        if self._view is None:
            self._view = self._ring.slot_view(self.slot, self.length)
        return self._view

    @property
    def nbytes(self) -> int:
        return self.length

    def tobytes(self) -> bytes:
        return bytes(self.view)

    def release(self) -> None:
        """Return the slot to the ring (idempotent)."""
        ring, self._ring = self._ring, None
        if ring is None:
            return
        if self._view is not None:
            self._view.release()
            self._view = None
        ring.free(self.slot)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        state = "released" if self._ring is None else "held"
        return f"<ShmSlice slot={self.slot} len={self.length} {state}>"


class PayloadRing:
    """Fixed-slot shared-memory arena owned by the shard's parent side."""

    def __init__(
        self,
        slots: int = 128,
        slot_bytes: int = 4096,
        name: Optional[str] = None,
    ) -> None:
        require_positive(slots, "slots")
        require_positive(slot_bytes, "slot_bytes")
        self.slots = slots
        self.slot_bytes = slot_bytes
        if name is None:
            name = (
                f"{SHM_PREFIX}_{os.getpid()}_{next(_ring_counter)}"
            )
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=slots * slot_bytes
        )
        self._free: "deque[int]" = deque(range(slots))
        self._lock = threading.Lock()
        self._leased = 0
        self._retired = False
        self._closed = False

    # -- introspection ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def leased(self) -> int:
        return self._leased

    @property
    def free_slots(self) -> int:
        with self._lock:
            return len(self._free)

    # -- parent-side slot lifecycle --------------------------------------------

    def alloc(self, nbytes: int) -> Optional[int]:
        """Lease one slot able to hold ``nbytes``; ``None`` = answer BUSY.

        ``None`` comes back both when the payload cannot fit a slot
        (the caller should fall back to inline bytes) and when every
        slot is leased (typed backpressure).
        """
        if nbytes > self.slot_bytes:
            return None
        with self._lock:
            if self._retired or not self._free:
                return None
            self._leased += 1
            return self._free.popleft()

    def free(self, slot: int) -> None:
        """Return a leased slot; closes a retired ring on the last one."""
        with self._lock:
            self._leased -= 1
            if not self._retired:
                self._free.append(slot)
                return
            close_now = self._leased <= 0 and not self._closed
        if close_now:
            self._close()

    def lease_slice(self, slot: int, length: int) -> ShmSlice:
        """Wrap an already-leased slot as a releasable result slice."""
        return ShmSlice(self, slot, length)

    # -- data movement (both sides) --------------------------------------------

    def write_into(self, slot: int, data) -> int:
        """Copy ``data`` (any buffer) into ``slot``; returns the length."""
        view = memoryview(data)
        if view.ndim != 1 or view.format != "B":
            view = view.cast("B")
        n = view.nbytes
        base = slot * self.slot_bytes
        self._shm.buf[base:base + n] = view
        view.release()
        return n

    def slot_view(self, slot: int, length: int) -> memoryview:
        """1-D byte view of ``length`` bytes at ``slot`` (no copy)."""
        base = slot * self.slot_bytes
        return self._shm.buf[base:base + length]

    # -- teardown --------------------------------------------------------------

    def retire(self) -> None:
        """Unlink the segment now; close once every lease is released.

        Safe against ``kill -9`` of the worker at any point: the name
        disappears from ``/dev/shm`` immediately (no leak for the chaos
        grid to find), and outstanding :class:`ShmSlice` leases keep
        only the anonymous mapping alive until the responder flushes
        them out.
        """
        with self._lock:
            if self._retired:
                return
            self._retired = True
            self._free.clear()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass
            close_now = self._leased <= 0 and not self._closed
        if close_now:
            self._close()

    def _close(self) -> None:
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover — a straggler view; the
            # segment is already unlinked, so the mapping just lives
            # until the last view is garbage collected
            self._closed = False

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"<PayloadRing {self.name} slots={self.slots}"
            f"x{self.slot_bytes}B leased={self._leased}"
            f"{' retired' if self._retired else ''}>"
        )
