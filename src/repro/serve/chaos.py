"""Serving-layer chaos harness: seeded faults, hard oracles.

The unit-level fault tests prove each mechanism in isolation; this
harness proves they *compose*.  One campaign
(:func:`run_serve_chaos`) stands up a real durable-ack process-backed
server and throws every fault class at it at once:

* **worker kills** — spec-driven ``chaos_kill_after_ops`` makes chosen
  workers SIGKILL *themselves* at an exact lifetime op count (a
  deterministic mid-batch death), and the campaign additionally kills
  workers from the parent side mid-run;
* **stalls** — a chosen worker sleeps through the parent's
  ``recv_timeout`` mid-batch, exercising the timeout → restart path
  (stalls shorter than the timeout are merely slow shards and must be
  absorbed silently);
* **network abuse** — seeded evil connections interleave with the real
  clients: truncated headers, hostile >64 MiB length prefixes, torn
  frames cut by a reset, plain garbage.  Each must die alone, with a
  typed error or a dropped connection, while every other connection
  keeps serving.

The oracles are strict:

* **zero lost acknowledged writes** — the final served image must be
  byte-identical to a direct-volume replay of the generators' write
  logs (exactly the acknowledged writes, in per-client issue order).
  Region-disjoint clients plus in-order-per-connection execution make
  the replay a complete oracle even under retries;
* **durability** — after a graceful drain + close, every shard's state
  file must reload (snapshot + ack-ledger recovery) to exactly its
  slice of the served image;
* **liveness** — every killed or stalled worker must have been
  restarted (supervisor restart count ≥ injected faults) and the load
  must complete every op with zero hard errors.

Everything is seeded: fault placement, evil-frame contents, and the
workload all derive from the campaign seed, so a failure reproduces
from its one-line summary.
"""

from __future__ import annotations

import asyncio
import glob
import os
import struct
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.array import RAID6Volume
from repro.codes.registry import make_code
from repro.journal.recovery import recover_on_mount
from repro.serve.checkpoint import load_shard_state
from repro.serve.shmring import SHM_PREFIX
from repro.serve.loadgen import fetch_image, replay_writes, run_closed_loop
from repro.serve.protocol import MAX_FRAME, OP_READ, ST_OK, Request, encode_request
from repro.serve.server import BlockServer, ServerConfig
from repro.serve.supervisor import SupervisedShard


@dataclass
class ServeChaosResult:
    """Outcome of one serving chaos campaign."""

    code: str
    p: int
    seed: int
    ops: int = 0
    writes: int = 0
    retries: int = 0
    busy: int = 0
    deadline_misses: int = 0
    errors: int = 0
    worker_kills: int = 0
    parent_kills: int = 0
    stalls: int = 0
    evil_frames: int = 0
    restarts: int = 0
    #: served image == direct replay of acknowledged writes
    image_identical: bool = False
    #: every shard state file reloads to its slice of the served image
    state_reload_identical: bool = False
    #: payload-ring segments still present in /dev/shm after close —
    #: must be zero even though workers were SIGKILLed mid-batch
    leaked_shm: int = 0
    shard_restarts: List[int] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        # worker self-kills and over-deadline stalls each force at
        # least one restart; a parent-side kill usually does too but
        # can race an in-progress restart, so it stays out of the floor
        return (
            self.image_identical
            and self.state_reload_identical
            and self.errors == 0
            and self.leaked_shm == 0
            and self.restarts >= self.worker_kills + self.stalls
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "p": self.p,
            "seed": self.seed,
            "ops": self.ops,
            "writes": self.writes,
            "retries": self.retries,
            "busy": self.busy,
            "deadline_misses": self.deadline_misses,
            "errors": self.errors,
            "worker_kills": self.worker_kills,
            "parent_kills": self.parent_kills,
            "stalls": self.stalls,
            "evil_frames": self.evil_frames,
            "restarts": self.restarts,
            "shard_restarts": self.shard_restarts,
            "image_identical": self.image_identical,
            "state_reload_identical": self.state_reload_identical,
            "leaked_shm": self.leaked_shm,
            "passed": self.passed,
        }


async def _evil_connection(
    host: str, port: int, kind: int, rng: np.random.Generator
) -> bool:
    """One hostile connection; returns True if the server survived it.

    Survival is checked from the *outside*: after the abuse, a fresh
    well-formed connection must still get an answer.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if kind == 0:  # truncated header: body shorter than the header
            writer.write(struct.pack("!I", 3) + b"\x01\x00\x00")
            await writer.drain()
            await asyncio.wait_for(reader.read(64), timeout=5)
        elif kind == 1:  # hostile length prefix past the 64 MiB cap
            writer.write(struct.pack("!I", MAX_FRAME + 1))
            await writer.drain()
            await asyncio.wait_for(reader.read(64), timeout=5)
        elif kind == 2:  # torn frame: promise 4 KiB, hang up mid-body
            writer.write(struct.pack("!I", 4096) + b"\x01" * 11)
            await writer.drain()
        else:  # plain garbage bytes
            writer.write(bytes(rng.integers(0, 256, 32, dtype=np.uint8)))
            await writer.drain()
            await asyncio.wait_for(reader.read(64), timeout=5)
    except (
        ConnectionResetError, BrokenPipeError, OSError,
        asyncio.TimeoutError, asyncio.IncompleteReadError,
    ):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    # the server must still answer a well-formed request
    probe_reader, probe_writer = await asyncio.open_connection(host, port)
    try:
        probe_writer.write(encode_request(Request(OP_READ, 0, 0, 1)))
        await probe_writer.drain()
        body = await asyncio.wait_for(probe_reader.readexactly(4), timeout=10)
        (length,) = struct.unpack("!I", body)
        payload = await asyncio.wait_for(
            probe_reader.readexactly(length), timeout=10
        )
        return payload[0] == ST_OK
    finally:
        probe_writer.close()
        try:
            await probe_writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def run_serve_chaos(
    code: str = "dcode",
    p: int = 5,
    *,
    seed: int = 2015,
    shards: int = 2,
    clients: int = 4,
    ops_per_client: int = 40,
    window: int = 8,
    element_size: int = 32,
    stripes_per_shard: int = 4,
    worker_kills: int = 1,
    parent_kills: int = 1,
    stalls: int = 1,
    evil_connections: int = 4,
    recv_timeout_s: float = 2.0,
    stall_s: Optional[float] = None,
    deadline_ms: int = 0,
    state_dir: Optional[str] = None,
    max_batch: int = 16,
) -> ServeChaosResult:
    """Run one full chaos campaign; every fault class at once.

    Deterministic per ``seed``: fault placement (which shards die at
    which lifetime op counts), evil-frame contents, and the client op
    streams all derive from it.  Parent-side kill *timing* is
    wall-clock and therefore varies — but the oracles are outcome
    properties (final-image identity, durability, zero errors) that
    hold for every interleaving, which is exactly the claim chaos
    testing is meant to establish.
    """
    chaos_rng = np.random.default_rng([seed, 0xC4A05])
    if worker_kills + stalls > shards:
        raise ValueError(
            f"{worker_kills} kills + {stalls} stalls need distinct "
            f"shards, got only {shards} — a restart clears *all* of a "
            f"shard's one-shot hooks, so stacked hooks would never fire"
        )
    if stall_s is None:
        # long enough to trip the batch timeout, short enough to keep
        # the campaign brisk
        stall_s = recv_timeout_s * 2
    if state_dir is not None:
        os.makedirs(state_dir, exist_ok=True)
    config = ServerConfig(
        shards=shards,
        backend="process",
        code=code,
        p=p,
        stripes_per_shard=stripes_per_shard,
        element_size=element_size,
        max_batch=max_batch,
        ack="durable",
        state_dir=state_dir or tempfile.mkdtemp(prefix="repro-chaos-"),
        supervise=True,
        recv_timeout_s=recv_timeout_s,
        max_restarts=max(8, 4 * (worker_kills + parent_kills + stalls)),
        default_deadline_ms=deadline_ms,
    )
    result = ServeChaosResult(code=code, p=p, seed=seed)

    # -- seeded fault placement: kills and stalls land on *distinct*
    # shards (a restart clears every one-shot hook on its shard), at op
    # counts early enough to land mid-campaign
    specs = [
        config.shard_spec(i, state_dir=config.state_dir)
        for i in range(shards)
    ]
    placement = chaos_rng.permutation(shards)
    for shard in placement[:worker_kills]:
        specs[shard] = replace(
            specs[shard],
            chaos_kill_after_ops=int(chaos_rng.integers(5, 25)),
        )
        result.worker_kills += 1
    for shard in placement[worker_kills:worker_kills + stalls]:
        specs[shard] = replace(
            specs[shard],
            chaos_stall_after_ops=int(chaos_rng.integers(5, 25)),
            chaos_stall_s=float(stall_s),
        )
        result.stalls += 1

    # fork before the loop exists (see make_backends)
    backends = [
        SupervisedShard(
            spec,
            recv_timeout=config.recv_timeout_s,
            heartbeat_s=0.05,
            max_restarts=config.max_restarts,
        )
        for spec in specs
    ]

    evil_kinds = [
        int(chaos_rng.integers(0, 4)) for _ in range(evil_connections)
    ]
    parent_targets = [
        int(chaos_rng.integers(0, shards)) for _ in range(parent_kills)
    ]

    async def campaign():
        server = BlockServer(config, backends)
        host, port = await server.start()
        n = server.router.num_elements

        async def saboteur():
            survived = True
            for j, target in enumerate(parent_targets):
                await asyncio.sleep(0.05 + 0.05 * j)
                backends[target].kill()
                result.parent_kills += 1
            for k, kind in enumerate(evil_kinds):
                ok = await _evil_connection(host, port, kind, chaos_rng)
                survived = survived and ok
                result.evil_frames += 1
            return survived

        load_task = asyncio.ensure_future(run_closed_loop(
            host, port,
            num_elements=n,
            element_size=config.element_size,
            clients=clients,
            ops_per_client=ops_per_client,
            seed=seed,
            window=window,
            verify=False,       # image equivalence is the oracle
            deadline_ms=deadline_ms,
        ))
        sabotage_task = asyncio.ensure_future(saboteur())
        report = await load_task
        survived = await sabotage_task
        image = await fetch_image(host, port, num_elements=n)
        await server.close(drain=True)   # graceful: flush + checkpoint
        return report, image, survived

    report, image, survived_evil = asyncio.run(campaign())

    result.ops = report.ops
    result.writes = report.writes
    result.retries = report.retries
    result.busy = report.busy
    result.deadline_misses = report.deadline_misses
    result.errors = report.errors + report.verify_failures
    if not survived_evil:
        result.errors += 1
    result.shard_restarts = [b.restarts for b in backends]
    result.restarts = sum(result.shard_restarts)

    # -- oracle 1: served image == direct replay of acknowledged writes
    shadow = RAID6Volume(
        make_code(code, p),
        num_stripes=shards * stripes_per_shard,
        element_size=element_size,
    )
    replay_writes(shadow, report.write_logs)
    n = shadow.num_elements
    result.image_identical = shadow.read(0, n).tobytes() == image

    # -- oracle 2: every shard state file reloads to its image slice
    # (base snapshot + delta-log replay + ack-ledger recovery — the
    # exact path a restarted worker takes)
    per = n // shards
    esize = element_size
    slices_ok = True
    for i in range(shards):
        state_path = os.path.join(config.state_dir, f"shard-{i}.npz")
        reloaded, _ = load_shard_state(state_path)
        recover_on_mount(reloaded)
        got = reloaded.read(0, per).tobytes()
        want = image[i * per * esize:(i + 1) * per * esize]
        slices_ok = slices_ok and (got == want)
    result.state_reload_identical = slices_ok

    # -- oracle 3: the payload rings are gone.  Only this process ever
    # creates ring segments (workers inherit the mapping), so any
    # /dev/shm entry with our pid after close() is a leak — including
    # rings whose worker died by SIGKILL mid-batch.
    result.leaked_shm = len(
        glob.glob(f"/dev/shm/{SHM_PREFIX}_{os.getpid()}_*")
    )
    return result


def run_chaos_grid(
    codes,
    primes,
    *,
    seed: int = 2015,
    **kwargs,
) -> Dict[str, dict]:
    """Run one campaign per (code, p); returns summaries keyed
    ``"code-p"``.  Used by the CI smoke job and the CLI."""
    out: Dict[str, dict] = {}
    for code in codes:
        for p in primes:
            result = run_serve_chaos(code, p, seed=seed, **kwargs)
            out[f"{code}-{p}"] = result.to_dict()
    return out
