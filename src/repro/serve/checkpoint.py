"""Incremental durable checkpoints: base snapshot + dirty-stripe deltas.

Durable-ack shards used to re-serialise their **entire volume** through
``np.savez_compressed`` on every acknowledged write batch — correct,
and measured at a third of the serving throughput.  This module keeps
the same crash contract while persisting only what changed:

* **base snapshot** — the spec's ``state_path`` (``shard-N.npz``) keeps
  holding a full v2 archive written by
  :func:`repro.array.persistence.save_volume`, stamped with a
  ``delta_epoch`` in its extra metadata;
* **delta log** — a sidecar (``shard-N.dlog``) of append-only records.
  Each record carries the raw images of the stripes dirtied since the
  last checkpoint (data *and* parity columns, so replay is a plain
  scatter with no re-encode), the full ack-intent ledger (open intents
  with redo payloads and group framing, exactly the fields the v2
  archive stores), the failed-disk set and the journal sequence
  counter.  Records are CRC-framed: a record torn by a crash mid-append
  fails its checksum and is ignored — safe, because the ack barrier
  returns only after the append completed, so a torn tail was never
  acknowledged;
* **compaction** — when the log outgrows the base (record count or byte
  ratio), the epoch increments, a fresh base is written (temp file +
  atomic rename) and the log is atomically truncated.  A crash between
  the two renames leaves old-epoch records behind a new-epoch base;
  replay skips records whose epoch does not match the base, so the
  half-compacted state loads to exactly the compacted image.

Mount-time recovery (:func:`load_shard_state`) replays base + matching
deltas to the same byte-exact image the serve chaos oracles check, then
the caller runs :func:`repro.journal.recovery.recover_on_mount` as
usual to roll the open ack intents forward.

Dirty-stripe capture uses the volume's two write funnels —
``_write_cell`` and ``_disk_write_block`` — wrapped per-instance the
same way :class:`repro.array.integrity.IntegrityChecker` wraps them
(the volume's process-pool RMW path already stands down when it sees a
wrapped funnel, so no forked child can scatter bytes past the tracker).
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.array import RAID6Volume
from repro.array.disk import DiskState
from repro.array.persistence import load_volume
from repro.codes.base import Cell
from repro.exceptions import ReproError
from repro.journal.intent import GroupFrame, WriteIntent, WriteIntentLog

#: Delta-log record magic (version-bearing).
MAGIC = b"RDL1"
_FRAME = struct.Struct("<II")  # body length, crc32(body)
_HLEN = struct.Struct("<I")    # header length inside the body


def delta_log_path(base_path) -> Path:
    """The sidecar delta log for a base snapshot path."""
    return Path(base_path).with_suffix(".dlog")


class DirtyStripeTracker:
    """Record which stripes the volume wrote since the last drain.

    Wraps the per-element and block-scatter write funnels by instance
    attribute (the :class:`IntegrityChecker` pattern), composing with
    any wrapper already installed.  ``drain()`` hands back the dirty
    set and resets it — called at the checkpoint barrier, when the
    batch's volume work has already returned.
    """

    def __init__(self, volume: RAID6Volume) -> None:
        self.volume = volume
        self.rows = volume.layout.rows
        self._dirty: Set[int] = set()
        self._lock = threading.Lock()
        self._inner_cell = volume._write_cell
        volume._write_cell = self._cell  # type: ignore[assignment]
        self._inner_block = volume._disk_write_block
        volume._disk_write_block = self._block  # type: ignore[assignment]

    def _cell(self, stripe: int, cell, value) -> None:
        with self._lock:
            self._dirty.add(int(stripe))
        self._inner_cell(stripe, cell, value)

    def _block(self, disk_id: int, offsets, data) -> None:
        stripes = np.unique(np.asarray(offsets) // self.rows)
        with self._lock:
            self._dirty.update(int(s) for s in stripes)
        self._inner_block(disk_id, offsets, data)

    def drain(self) -> Set[int]:
        with self._lock:
            dirty, self._dirty = self._dirty, set()
        return dirty

    def detach(self) -> None:
        volume = self.volume
        if volume.__dict__.get("_write_cell") == self._cell:
            volume._write_cell = self._inner_cell  # type: ignore[assignment]
        if volume.__dict__.get("_disk_write_block") == self._block:
            volume._disk_write_block = (  # type: ignore[assignment]
                self._inner_block
            )


def _stripe_image(volume: RAID6Volume, stripe: int) -> np.ndarray:
    """Raw ``(cols, rows, element_size)`` image of one stripe — every
    column, parity included, so replay never re-encodes."""
    rows = volume.layout.rows
    lo, hi = stripe * rows, (stripe + 1) * rows
    return np.stack([d._store[lo:hi] for d in volume.disks])


def _journal_spec(volume: RAID6Volume) -> Tuple[dict, List[bytes]]:
    """Open-intent metadata + payload blobs (v2 archive field shapes)."""
    journal = volume.journal
    if journal is None:
        return {"next_seq": 0, "open": []}, []
    blobs: List[bytes] = []
    specs = []
    for intent in journal.open_intents():
        spec = {
            "seq": intent.seq,
            "stripe": intent.stripe,
            "cells": [[c.row, c.col] for c in intent.dirty_cells],
            "old_parity_digest": intent.old_parity_digest,
            "new_parity_digest": intent.new_parity_digest,
        }
        if intent.group is not None:
            spec["group_seq"] = intent.group.group_seq
            spec["group_size"] = intent.group.size
            spec["group_old_digest"] = intent.group.old_digest
        specs.append(spec)
        payload = intent.payload()
        blobs.append(
            np.stack(
                [payload[cell] for cell in intent.dirty_cells]
            ).tobytes()
        )
    return {"next_seq": journal.next_seq, "open": specs}, blobs


def _restore_journal(volume: RAID6Volume, spec: dict,
                     blobs: List[bytes]) -> None:
    """Reattach the ack ledger from a record's journal section."""
    if volume.journal is None:
        volume.journal = WriteIntentLog()
    esize = volume.element_size
    frames: Dict[int, GroupFrame] = {}
    intents = []
    for entry, blob in zip(spec["open"], blobs):
        cells = [Cell(r, c) for r, c in entry["cells"]]
        payload = np.frombuffer(blob, dtype=np.uint8).reshape(
            len(cells), esize
        )
        group = None
        if "group_seq" in entry:
            gseq = int(entry["group_seq"])
            group = frames.get(gseq)
            if group is None:
                digest = entry.get("group_old_digest")
                group = GroupFrame(
                    group_seq=gseq,
                    size=int(entry["group_size"]),
                    old_digest=None if digest is None else int(digest),
                )
                frames[gseq] = group
        intents.append(WriteIntent(
            seq=int(entry["seq"]),
            stripe=int(entry["stripe"]),
            cells=tuple(
                (cell, payload[i].copy())
                for i, cell in enumerate(cells)
            ),
            old_parity_digest=entry.get("old_parity_digest"),
            new_parity_digest=entry.get("new_parity_digest"),
            group=group,
        ))
    volume.journal.restore(intents, int(spec["next_seq"]))


class DeltaLog:
    """Append-only, CRC-framed record file next to the base snapshot."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self.bytes = 0
        self.records = 0

    # -- writing ---------------------------------------------------------------

    def open_append(self) -> None:
        """Open for appending, truncating any torn tail first.

        A crash mid-append leaves a record that fails its length or CRC
        check; appending after it would strand every later record
        behind garbage, so the valid prefix is measured and the file
        truncated to it before new records go in.
        """
        valid = 0
        count = 0
        if self.path.exists():
            for _, end in self._iter_raw():
                valid = end
                count += 1
            size = self.path.stat().st_size
            if size != valid:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid)
        self._fh = open(self.path, "ab")
        self.bytes = valid
        self.records = count

    def append(self, volume: RAID6Volume, stripes, epoch: int) -> None:
        """Append one checkpoint record (the durable-ack barrier)."""
        if self._fh is None:
            self.open_append()
        stripes = sorted(int(s) for s in stripes)
        journal_spec, intent_blobs = _journal_spec(volume)
        header = {
            "epoch": int(epoch),
            "stripes": stripes,
            "failed": sorted(volume.failed_disks),
            "journal": journal_spec,
        }
        hdr = json.dumps(header, separators=(",", ":")).encode()
        parts = [_HLEN.pack(len(hdr)), hdr]
        parts.extend(
            _stripe_image(volume, s).tobytes() for s in stripes
        )
        parts.extend(intent_blobs)
        body = b"".join(parts)
        record = MAGIC + _FRAME.pack(len(body), zlib.crc32(body)) + body
        self._fh.write(record)
        self._fh.flush()
        self.bytes += len(record)
        self.records += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def reset(self) -> None:
        """Atomically truncate the log (compaction's second rename)."""
        self.close()
        tmp = self.path.with_name("." + self.path.name + ".tmp")
        with open(tmp, "wb"):
            pass
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        self.bytes = 0
        self.records = 0

    # -- reading ---------------------------------------------------------------

    def _iter_raw(self):
        """Yield ``(body, end_offset)`` for each valid record in order,
        stopping at the first torn or corrupt one."""
        with open(self.path, "rb") as fh:
            blob = fh.read()
        pos = 0
        head = len(MAGIC) + _FRAME.size
        while pos + head <= len(blob):
            if blob[pos:pos + len(MAGIC)] != MAGIC:
                return
            length, crc = _FRAME.unpack_from(blob, pos + len(MAGIC))
            body = blob[pos + head:pos + head + length]
            if len(body) != length or zlib.crc32(body) != crc:
                return
            pos += head + length
            yield body, pos

    def scan(self) -> List[dict]:
        """Parse every valid record into header + stripe/intent blobs."""
        if not self.path.exists():
            return []
        out = []
        for body, _ in self._iter_raw():
            (hlen,) = _HLEN.unpack_from(body)
            cursor = _HLEN.size
            header = json.loads(body[cursor:cursor + hlen].decode())
            cursor += hlen
            out.append({"header": header, "blob": body, "data_at": cursor})
        return out


def _apply_record(volume: RAID6Volume, record: dict) -> None:
    """Scatter one record's stripe images onto the volume's disks."""
    header = record["header"]
    blob, cursor = record["blob"], record["data_at"]
    rows = volume.layout.rows
    cols = len(volume.disks)
    esize = volume.element_size
    stripe_bytes = cols * rows * esize
    for stripe in header["stripes"]:
        image = np.frombuffer(
            blob, dtype=np.uint8, count=stripe_bytes, offset=cursor
        ).reshape(cols, rows, esize)
        cursor += stripe_bytes
        lo, hi = stripe * rows, (stripe + 1) * rows
        for col, disk in enumerate(volume.disks):
            disk._store[lo:hi] = image[col]
    intent_blobs = []
    for entry in header["journal"]["open"]:
        n = len(entry["cells"]) * esize
        intent_blobs.append(blob[cursor:cursor + n])
        cursor += n
    _restore_journal(volume, header["journal"], intent_blobs)
    for disk_id in header["failed"]:
        volume.disks[int(disk_id)].state = DiskState.FAILED


def load_shard_state(path) -> Tuple[RAID6Volume, int]:
    """Rebuild a shard volume from base snapshot + delta log.

    Replays every valid record whose epoch matches the base's
    ``delta_epoch`` (stale records from a crash mid-compaction are
    skipped) and returns ``(volume, replayed_records)``.  The journal
    and failed-disk set come from the **last** matching record — each
    record snapshots the full ledger, it does not accumulate.  Run
    :func:`repro.journal.recovery.recover_on_mount` on the result, as
    with any mounted archive.
    """
    path = Path(path)
    volume = load_volume(path)
    epoch = int(getattr(volume, "extra_meta", {}).get("delta_epoch", 0))
    replayed = 0
    for record in DeltaLog(delta_log_path(path)).scan():
        if int(record["header"].get("epoch", -1)) != epoch:
            continue
        _apply_record(volume, record)
        replayed += 1
    return volume, replayed


class IncrementalCheckpointer:
    """Per-shard checkpoint engine: delta appends + epoch compaction."""

    def __init__(
        self,
        volume: RAID6Volume,
        base_path,
        *,
        compact_every: int = 256,
        compact_ratio: float = 4.0,
    ) -> None:
        if volume.journal is None:
            raise ReproError(
                "incremental checkpoints need a journaled volume"
            )
        self.volume = volume
        self.base_path = Path(base_path)
        self.compact_every = compact_every
        self.compact_ratio = compact_ratio
        self.epoch = int(
            getattr(volume, "extra_meta", {}).get("delta_epoch", 0)
        )
        self.log = DeltaLog(delta_log_path(base_path))
        self.log.open_append()
        self.tracker = DirtyStripeTracker(volume)
        self.deltas = 0
        self.compactions = 0

    def write_base(self) -> None:
        """Full snapshot to the base path (temp file + atomic rename)."""
        from repro.array.persistence import save_volume

        # the temp name must keep the .npz suffix — np.savez appends
        # one to anything else, and the rename source must exist
        tmp = self.base_path.with_name(
            "." + self.base_path.stem + ".tmp.npz"
        )
        save_volume(
            self.volume, tmp, extra_meta={"delta_epoch": self.epoch}
        )
        os.replace(tmp, self.base_path)

    def _compaction_due(self) -> bool:
        if self.log.records + 1 >= self.compact_every:
            return True
        try:
            base_bytes = self.base_path.stat().st_size
        except OSError:  # pragma: no cover — base missing mid-flight
            return True
        # Amortize against what a compaction actually costs to rewrite:
        # the raw volume image.  The base file is *compressed*, so for
        # small shards it undercounts by an order of magnitude, and
        # gating the raw-byte delta log on it alone triggers a full
        # base rewrite every few batches — measured as the dominant
        # durable-ack cost in the serving profile.
        volume = self.volume
        raw_bytes = (
            len(volume.disks)
            * volume.layout.rows
            * volume.mapper.num_stripes
            * volume.element_size
        )
        return self.log.bytes > self.compact_ratio * max(
            base_bytes, raw_bytes
        )

    def checkpoint(self) -> None:
        """Persist everything changed since the last call.

        Appends one delta record (dirty stripes + full ack ledger), or
        runs a compaction when the log has outgrown the base — either
        way, when this returns the acknowledged state survives
        ``kill -9``.
        """
        dirty = self.tracker.drain()
        if self._compaction_due():
            self.compact()
            return
        self.log.append(self.volume, dirty, self.epoch)
        self.deltas += 1

    def compact(self) -> None:
        """New epoch, fresh base, truncated log (two atomic renames).

        A crash between them leaves old-epoch records behind the new
        base; :func:`load_shard_state` skips them by epoch, so the
        reload is exactly the compacted image either way.
        """
        self.epoch += 1
        self.write_base()
        self.log.reset()
        self.compactions += 1

    def close(self) -> None:
        self.tracker.detach()
        self.log.close()
