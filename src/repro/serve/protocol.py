"""Length-prefixed binary wire protocol for the block service.

A frame is a 4-byte big-endian body length followed by the body.
Request bodies open with a fixed header::

    !BHQIH  =  op (u8) | tenant (u16) | start (u64) | count (u32)
               | deadline_ms (u16)

followed by the payload (``count * element_size`` bytes for WRITE,
empty otherwise).  ``deadline_ms`` is the client's per-request deadline
budget (0 = none): the server converts it to an absolute deadline on
arrival and drops the op with a typed DEADLINE response if it is still
queued when the budget runs out — bounded waiting instead of silent
queueing collapse.  Response bodies open with a status byte (OK / BUSY /
ERROR / RETRY / DEADLINE) followed by the response payload — read data
for READ, UTF-8 JSON for SCRUB / STAT, a UTF-8 message for ERROR and
RETRY, empty for BUSY and DEADLINE.

The admin op FAIL_DISK reuses the header fields: ``start`` is the shard
index, ``count`` the disk index inside that shard.  BUSY, RETRY and
DEADLINE are *typed* responses, not errors: admission control answers
BUSY in O(1) without touching a volume; RETRY means a shard worker
crashed or stalled mid-batch and is being restarted (the op did not
acknowledge — re-issuing it is safe); DEADLINE means the op was dropped
before dispatch.  Well-behaved clients back off (with jitter) and
retry all three.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import Optional

#: Request opcodes.
OP_READ = 1
OP_WRITE = 2
OP_SCRUB = 3
OP_STAT = 4
OP_FAIL_DISK = 5

OP_NAMES = {
    OP_READ: "read",
    OP_WRITE: "write",
    OP_SCRUB: "scrub",
    OP_STAT: "stat",
    OP_FAIL_DISK: "fail_disk",
}

#: Response status codes.
ST_OK = 0
ST_BUSY = 1
ST_ERROR = 2
#: Transient server-side failure (shard crashed / restarting): the op
#: was *not* acknowledged and re-issuing it is safe and expected.
ST_RETRY = 3
#: The request's deadline expired while it was still queued; it was
#: dropped before touching a volume.
ST_DEADLINE = 4

ST_NAMES = {
    ST_OK: "ok",
    ST_BUSY: "busy",
    ST_ERROR: "error",
    ST_RETRY: "retry",
    ST_DEADLINE: "deadline",
}

#: Statuses a client may re-issue the same op for (the server guarantees
#: the op either never ran or is idempotent to repeat).
RETRYABLE = frozenset({ST_BUSY, ST_RETRY, ST_DEADLINE})

#: Cap on the per-request deadline field (u16 milliseconds).
MAX_DEADLINE_MS = 0xFFFF

_LEN = struct.Struct("!I")
HEADER = struct.Struct("!BHQIH")

#: Upper bound on a frame body; a corrupt or hostile length prefix must
#: not make the server allocate gigabytes.  64 MiB comfortably covers
#: the largest legitimate write burst the benchmarks issue.
MAX_FRAME = 64 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame (bad length, short header, unknown opcode)."""


@dataclass(frozen=True)
class Request:
    """One decoded request frame."""

    op: int
    tenant: int
    start: int
    count: int
    payload: bytes = b""
    #: Per-request deadline budget in milliseconds (0 = no deadline).
    deadline_ms: int = 0

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        name = OP_NAMES.get(self.op, f"op{self.op}")
        return (
            f"<Request {name} tenant={self.tenant} "
            f"[{self.start}, {self.start + self.count}) "
            f"payload={len(self.payload)}B deadline={self.deadline_ms}ms>"
        )


def encode_request(req: Request) -> bytes:
    """Serialise ``req`` to a full frame (length prefix included)."""
    body = HEADER.pack(
        req.op, req.tenant, req.start, req.count, req.deadline_ms
    )
    body += req.payload
    return _LEN.pack(len(body)) + body


def encode_request_parts(req: Request) -> tuple:
    """``(prefix + header, payload)`` for scatter-gather sending.

    A pipelining client writes the two buffers separately, so a large
    WRITE payload goes to the transport as-is instead of being copied
    into a concatenated frame first.
    """
    head = HEADER.pack(
        req.op, req.tenant, req.start, req.count, req.deadline_ms
    )
    return _LEN.pack(len(head) + len(req.payload)) + head, req.payload


def decode_request(body: bytes) -> Request:
    """Parse a request frame body (without the length prefix)."""
    if len(body) < HEADER.size:
        raise ProtocolError(
            f"request body too short: {len(body)} < {HEADER.size}"
        )
    op, tenant, start, count, deadline_ms = HEADER.unpack_from(body)
    if op not in OP_NAMES:
        raise ProtocolError(f"unknown opcode {op}")
    return Request(
        op, tenant, start, count, bytes(body[HEADER.size:]), deadline_ms
    )


def encode_response(status: int, payload: bytes = b"") -> bytes:
    """Serialise a response to a full frame (length prefix included)."""
    body = bytes([status]) + payload
    return _LEN.pack(len(body)) + body


def encode_response_prefix(status: int, payload_len: int) -> bytes:
    """Length prefix + status byte for a response whose payload follows
    as separate buffer(s).

    This is the scatter-gather half of :func:`encode_response`: the
    server sends ``prefix + payload buffers`` through one
    ``socket.sendmsg`` so large READ payloads (shared-memory ring
    slices, zero-copy volume views) never get concatenated into an
    intermediate bytes object.
    """
    return _LEN.pack(1 + payload_len) + bytes([status])


def decode_response(body: bytes) -> tuple:
    """Parse a response frame body → ``(status, payload)``."""
    if not body:
        raise ProtocolError("empty response body")
    return body[0], bytes(body[1:])


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one frame body; ``None`` on clean EOF before a frame starts."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-prefix") from exc
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc


async def write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    """Send a pre-encoded frame and drain the transport."""
    writer.write(frame)
    await writer.drain()
