"""Asyncio block service over sharded :class:`RAID6Volume`s.

The paper's evaluation measures read throughput and I/O balance, but a
deployed array is judged at the *request path*: sustained ops/s and
tail latency while thousands of clients hammer it.  This package adds
that path:

* :mod:`repro.serve.protocol` — the length-prefixed binary frame
  (read / write / scrub / stat / fail-disk, tenant-tagged, with
  per-request deadlines and typed retryable statuses);
* :mod:`repro.serve.router` — block-range → shard extent splitting;
* :mod:`repro.serve.shard` — a volume + write-back cache per shard,
  executed inline or in a forked worker process over shared state;
* :mod:`repro.serve.state` — crash-safe shard state for durable acks
  (ack-intent ledger + atomic snapshots + mount-time recovery);
* :mod:`repro.serve.supervisor` — health checks, typed crash/timeout
  conversion, and restart-from-spec for process-backed shards;
* :mod:`repro.serve.coalescer` — per-shard queues that drain bursts
  into the volume's batched read / encode / destage paths;
* :mod:`repro.serve.qos` — token-bucket + in-flight admission control
  that sheds load with a typed BUSY instead of collapsing;
* :mod:`repro.serve.server` — the asyncio front end tying it together;
* :mod:`repro.serve.loadgen` — seeded open/closed-loop load
  generators with byte-level shadow verification and retry/backoff;
* :mod:`repro.serve.chaos` — the seeded fault-injection campaign
  (worker kills, stalls, hostile frames) with hard byte-level oracles.
"""

from repro.serve.protocol import (  # noqa: F401
    OP_FAIL_DISK,
    OP_READ,
    OP_SCRUB,
    OP_STAT,
    OP_WRITE,
    RETRYABLE,
    ST_BUSY,
    ST_DEADLINE,
    ST_ERROR,
    ST_OK,
    ST_RETRY,
    Request,
)
from repro.serve.server import BlockServer, ServerConfig, make_backends  # noqa: F401
from repro.serve.shard import ShardSpec  # noqa: F401
from repro.serve.supervisor import SupervisedShard  # noqa: F401
