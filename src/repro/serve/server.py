"""The asyncio block-serving front end.

One :class:`BlockServer` owns a :class:`~repro.serve.router.ShardRouter`
over N shard backends, each behind a coalescing
:class:`~repro.serve.coalescer.ShardQueue`.  A connection handler per
client decodes frames, runs admission control, splits multi-shard
ranges into extents, gathers the per-shard results, and answers one
response frame per request — all without blocking the loop on volume
work (shards execute on their own single-thread executors or worker
processes).

Process-backed shards must be forked **before** the event loop exists
(:func:`make_backends`), because ``fork`` duplicates a running loop's
internal wakeup pipes into the child.  ``python -m repro serve`` and
the benchmarks follow that order: build backends, then
``asyncio.run(...)``.

Fault tolerance is layered on without changing the data path:
process-backed shards are wrapped in a
:class:`~repro.serve.supervisor.SupervisedShard` (health checks,
restart-from-spec, typed RETRY on crash), ``ack="durable"`` gives every
shard a crash-safe state file so acknowledged writes survive ``kill
-9``, per-request deadlines bound queueing, and ``close()`` drains the
shard queues before tearing them down so a graceful shutdown never
drops accepted work.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.codes.registry import make_code
from repro.serve import protocol
from repro.serve.coalescer import ShardQueue
from repro.serve.protocol import (
    MAX_DEADLINE_MS,
    OP_FAIL_DISK,
    OP_READ,
    OP_SCRUB,
    OP_STAT,
    OP_WRITE,
    ST_BUSY,
    ST_DEADLINE,
    ST_ERROR,
    ST_OK,
    ST_RETRY,
    ProtocolError,
    Request,
)
from repro.serve.qos import AdmissionControl
from repro.serve.router import ShardRouter
from repro.serve.shard import BACKENDS, InlineShard, ShardSpec
from repro.serve.shmring import ShmSlice
from repro.serve.supervisor import SupervisedShard
from repro.util.validation import require_positive

#: Buffers handed to one ``socket.sendmsg`` call.  Linux guarantees
#: IOV_MAX >= 1024; half that leaves headroom and keeps the partial-send
#: bookkeeping cheap.
_SENDMSG_IOV = 512


def _payload_buffer(payload) -> Tuple[object, Optional[ShmSlice]]:
    """Normalise one shard READ payload to ``(wire buffer, hold)``.

    Ring slices expose their shared-memory view and stay pinned (the
    hold) until the responder has flushed the bytes; ndarray payloads
    (inline shards hand volume reads through raw) expose their memory
    via the buffer protocol.  Nothing is copied here.
    """
    if isinstance(payload, ShmSlice):
        return payload.view, payload
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return payload, None
    try:
        return memoryview(payload).cast("B"), None
    except (TypeError, ValueError):  # non-contiguous ndarray
        return payload.tobytes(), None


def _nbytes(buf) -> int:
    return buf.nbytes if isinstance(buf, memoryview) else len(buf)


@dataclass(frozen=True)
class ServerConfig:
    """Geometry + policy of one block service."""

    shards: int = 1
    backend: str = "inline"          # "inline" | "process"
    code: str = "dcode"
    p: int = 7
    stripes_per_shard: int = 64
    element_size: int = 64
    workers: Optional[int] = None
    process_pool: Optional[bool] = None
    cache_stripes: int = 16
    evict_batch: int = 4
    write_back: bool = True          # False = direct per-op baseline
    max_batch: int = 64              # 1 = uncoalesced serial baseline
    max_inflight: int = 256
    rate: Optional[float] = None     # per-tenant ops/s; None = unlimited
    burst: Optional[float] = None
    host: str = "127.0.0.1"
    port: int = 0                    # 0 = ephemeral
    #: "buffered" acks a WRITE once it reaches the shard cache;
    #: "durable" acks only after the shard's checkpoint barrier
    #: (ack-intent ledger + atomic snapshot), so acked writes survive
    #: ``kill -9`` of a worker.
    ack: str = "buffered"
    #: Directory for per-shard crash-safe state files (durable mode);
    #: None = a fresh temporary directory per :func:`make_backends`.
    state_dir: Optional[str] = None
    #: Wrap process backends in a supervisor (health checks + restart).
    #: None = yes exactly when the backend is process-based.
    supervise: Optional[bool] = None
    #: Per-batch worker reply timeout (None = wait forever).
    recv_timeout_s: Optional[float] = None
    #: Supervisor idle-heartbeat period (0 = no background monitor).
    heartbeat_s: float = 0.0
    #: Restart budget before a shard is declared failed.
    max_restarts: int = 8
    #: Server-side default deadline applied to requests that carry none
    #: (0 = none).
    default_deadline_ms: int = 0
    #: Payload-ring geometry for process-backed shards: slot count and
    #: slot size in bytes (0 = sized automatically from the element
    #: size).  The ring carries WRITE payloads and READ results between
    #: parent and worker out-of-band; the Pipe only moves descriptors.
    ring_slots: int = 128
    ring_slot_bytes: int = 0
    #: Directory for cProfile dumps (``--profile``): the server loop,
    #: each coalescer thread, and each shard worker write one
    #: ``.pstats`` file apiece.  None = no profiling.
    profile_dir: Optional[str] = None

    def __post_init__(self) -> None:
        require_positive(self.shards, "shards")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {sorted(BACKENDS)}, "
                f"got {self.backend!r}"
            )
        if self.ack not in ("buffered", "durable"):
            raise ValueError(
                f"ack must be 'buffered' or 'durable', got {self.ack!r}"
            )
        if not 0 <= self.default_deadline_ms <= MAX_DEADLINE_MS:
            raise ValueError(
                f"default_deadline_ms must be in [0, {MAX_DEADLINE_MS}]"
            )
        if self.recv_timeout_s is not None and self.recv_timeout_s <= 0:
            raise ValueError("recv_timeout_s must be positive or None")
        require_positive(self.max_restarts, "max_restarts")
        require_positive(self.ring_slots, "ring_slots")
        if self.ring_slot_bytes < 0:
            raise ValueError("ring_slot_bytes must be >= 0")

    @property
    def durable(self) -> bool:
        return self.ack == "durable"

    @property
    def supervised(self) -> bool:
        if self.supervise is not None:
            return self.supervise
        return self.backend == "process"

    def shard_spec(self, shard: int = 0, state_dir: Optional[str] = None) \
            -> ShardSpec:
        state_dir = state_dir if state_dir is not None else self.state_dir
        return ShardSpec(
            code=self.code,
            p=self.p,
            num_stripes=self.stripes_per_shard,
            element_size=self.element_size,
            workers=self.workers,
            process_pool=self.process_pool,
            cache_stripes=self.cache_stripes,
            evict_batch=self.evict_batch,
            write_back=self.write_back,
            durable=self.durable,
            state_path=(
                os.path.join(state_dir, f"shard-{shard}.npz")
                if self.durable and state_dir is not None else None
            ),
            ring_slots=self.ring_slots,
            ring_slot_bytes=self.ring_slot_bytes,
            profile_path=(
                os.path.join(self.profile_dir, f"shard-{shard}.pstats")
                if self.profile_dir is not None else None
            ),
        )

    def router(self) -> ShardRouter:
        per = make_code(self.code, self.p).num_data_cells
        return ShardRouter(self.shards, self.stripes_per_shard * per)


def make_backends(
    config: ServerConfig, state_dir: Optional[str] = None
) -> List[object]:
    """Build the shard backends (fork happens here, pre-loop).

    Process backends come back supervised unless ``config.supervise``
    says otherwise.  Durable mode needs a state directory; when the
    config names none, a fresh temporary directory is created so every
    pool gets private snapshots.
    """
    state_dir = state_dir or config.state_dir
    if config.durable and state_dir is None:
        state_dir = tempfile.mkdtemp(prefix="repro-shard-state-")
    specs = [
        config.shard_spec(i, state_dir=state_dir)
        for i in range(config.shards)
    ]
    if config.backend == "inline":
        return [InlineShard(spec) for spec in specs]
    if config.supervised:
        return [
            SupervisedShard(
                spec,
                recv_timeout=config.recv_timeout_s,
                heartbeat_s=config.heartbeat_s,
                max_restarts=config.max_restarts,
            )
            for spec in specs
        ]
    cls = BACKENDS[config.backend]
    return [
        cls(spec, recv_timeout=config.recv_timeout_s) for spec in specs
    ]


class BlockServer:
    """Serve the block protocol over TCP for one shard pool."""

    def __init__(
        self,
        config: ServerConfig,
        backends: Optional[List[object]] = None,
    ) -> None:
        self.config = config
        self.router = config.router()
        self.backends = (
            make_backends(config) if backends is None else backends
        )
        if len(self.backends) != config.shards:
            raise ValueError(
                f"{len(self.backends)} backends for "
                f"{config.shards} shards"
            )
        self.admission = AdmissionControl(
            max_inflight=config.max_inflight,
            rate=config.rate,
            burst=config.burst,
        )
        self.queues: List[ShardQueue] = []
        self.ops = 0
        self.busy = 0
        self.errors = 0
        self.retried = 0
        self.deadline_misses = 0
        self.flushes = 0
        self.zero_copy_flushes = 0
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Start queues + listener; returns the bound (host, port)."""
        self.queues = [
            ShardQueue(
                b,
                max_batch=self.config.max_batch,
                profile_path=(
                    os.path.join(
                        self.config.profile_dir, f"queue-{i}.pstats"
                    )
                    if self.config.profile_dir is not None else None
                ),
            )
            for i, b in enumerate(self.backends)
        ]
        for queue in self.queues:
            queue.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def close(self, drain: bool = True) -> None:
        """Stop the listener and shut the shard pool down.

        With ``drain=True`` (the default — a *graceful* shutdown) every
        op already accepted onto a shard queue is executed and answered
        before the queues stop, and each backend's ``close`` then
        flushes its cache (and, in durable mode, takes a final
        checkpoint) — accepted work is never silently dropped.
        ``drain=False`` is the hard-stop path: queued ops are abandoned
        where they sit.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            for queue in self.queues:
                await queue.drain()
        for queue in self.queues:
            await queue.close()
        self.queues = []

    # -- request handling ------------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Pipelined per-connection loop.

        Frames are *begun* (admitted, split, enqueued on shard queues)
        the moment they arrive, without waiting for earlier requests to
        finish — that is what lets queue depth at the clients turn into
        coalescer batch size at the shards.  A responder task writes
        results back strictly in request order, so the protocol needs
        no request IDs.
        """
        pending: "asyncio.Queue" = asyncio.Queue()
        responder = asyncio.get_running_loop().create_task(
            self._respond_loop(pending, writer)
        )
        try:
            while True:
                body = await protocol.read_frame(reader)
                if body is None:
                    break
                try:
                    req = protocol.decode_request(body)
                except ProtocolError as exc:
                    await pending.put(
                        ("imm", None, ST_ERROR, str(exc).encode())
                    )
                    break
                await pending.put(self._begin(req))
        except (ProtocolError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await pending.put(None)
            try:
                await responder
            except asyncio.CancelledError:
                # loop teardown cancelled the responder mid-drain; the
                # connection is going away regardless
                pass
            except Exception:  # noqa: BLE001 — connection teardown
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _begin(self, req: Request):
        """Admit + enqueue one request; returns the pending item.

        Runs synchronously on the reader loop so ops enter the shard
        queues in frame-arrival order.  ``imm`` items carry a finished
        response (BUSY, validation error); the other kinds carry shard
        futures the responder gathers.
        """
        if not self.admission.admit(req.tenant):
            return ("imm", req, ST_BUSY, b"")
        try:
            if req.op in (OP_READ, OP_WRITE):
                esize = self.config.element_size
                if (
                    req.op == OP_WRITE
                    and len(req.payload) != req.count * esize
                ):
                    raise ValueError(
                        f"payload of {len(req.payload)} bytes != "
                        f"{req.count} x {esize}"
                    )
                # the wire deadline is a relative budget; fix it to an
                # absolute instant at admission so queueing time counts
                ms = req.deadline_ms or self.config.default_deadline_ms
                deadline = (
                    time.monotonic() + ms / 1000.0 if ms else None
                )
                futures = []
                for shard, local, take, offset in self.router.split(
                    req.start, req.count
                ):
                    chunk = (
                        req.payload[
                            offset * esize:(offset + take) * esize
                        ]
                        if req.op == OP_WRITE else b""
                    )
                    futures.append(
                        self.queues[shard].submit_nowait(
                            (req.op, local, take, chunk), deadline
                        )
                    )
                return ("gather", req, futures)
            if req.op in (OP_SCRUB, OP_STAT):
                return ("gather", req, [
                    queue.submit_nowait((req.op, 0, 0, b""))
                    for queue in self.queues
                ])
            if req.op == OP_FAIL_DISK:
                shard = req.start
                if not 0 <= shard < self.config.shards:
                    raise ValueError(
                        f"shard {shard} outside pool of "
                        f"{self.config.shards}"
                    )
                return ("gather", req, [
                    self.queues[shard].submit_nowait(
                        (OP_FAIL_DISK, 0, req.count, b"")
                    )
                ])
            raise ValueError(f"unhandled op {req.op}")
        except Exception as exc:  # noqa: BLE001 — answer, don't drop conn
            self.admission.release(req.tenant)
            return ("imm", req, ST_ERROR, str(exc).encode())

    async def _finish(self, item):
        """Resolve one pending item to ``(status, parts, holds)``.

        ``parts`` is the response payload as a list of wire buffers in
        address order — ring slices and volume views pass through
        uncopied.  ``holds`` are the ring slices pinned until the
        responder has flushed them (released then, back to their
        shard's ring).
        """
        kind, req = item[0], item[1]
        if kind == "imm":
            return item[2], [item[3]], []
        try:
            futures = item[2]
            if len(futures) == 1:  # common case: one extent, one shard
                results = [await futures[0]]
            else:
                results = await asyncio.gather(*futures)
            for status, payload in results:
                if status != ST_OK:
                    # short-circuit: free every slice the partial
                    # success pinned before answering the failure
                    data = (
                        payload.tobytes()
                        if hasattr(payload, "tobytes") else payload
                    )
                    for _, p in results:
                        if hasattr(p, "release"):
                            p.release()
                    return status, [data], []
            if req.op == OP_READ:
                # extents are enqueued in address order
                parts, holds = [], []
                for _, payload in results:
                    buf, hold = _payload_buffer(payload)
                    parts.append(buf)
                    if hold is not None:
                        holds.append(hold)
                return ST_OK, parts, holds
            if req.op in (OP_SCRUB, OP_STAT):
                merged = {
                    str(shard): json.loads(bytes(payload).decode())
                    for shard, (_, payload) in enumerate(results)
                }
                if req.op == OP_STAT:
                    merged["server"] = self.stats()
                return ST_OK, [json.dumps(merged).encode()], []
            return ST_OK, [], []
        except Exception as exc:  # noqa: BLE001 — answer, don't drop conn
            return ST_ERROR, [str(exc).encode()], []
        finally:
            self.admission.release(req.tenant)

    async def _send_buffers(self, writer, bufs: List[memoryview]) -> None:
        """Flush framed response buffers to one client, scatter-gather.

        Fast path: the transport's write buffer is empty (the steady
        state of a draining responder), so the buffer list goes
        straight to ``os.writev`` on the connection's fd — one syscall
        per ~500 frames and zero intermediate copies, ring slices and
        volume views included.  Slow path (kernel pushback, TLS, or
        bytes already queued on the transport): the leftovers are
        joined once and handed to the stream writer.  That single join
        is what lets ``flush`` release ring slots the moment it
        returns — the transport may hold its copy as long as it likes.
        """
        transport = writer.transport
        sock = (
            transport.get_extra_info("socket")
            if transport.get_extra_info("sslcontext") is None else None
        )
        if sock is not None:
            fd = sock.fileno()
            while bufs and transport.get_write_buffer_size() == 0:
                try:
                    sent = os.writev(fd, bufs[:_SENDMSG_IOV])
                except (BlockingIOError, InterruptedError):
                    break
                if sent <= 0:  # pragma: no cover — defensive
                    break
                while sent and bufs:
                    head = bufs[0]
                    if sent >= head.nbytes:
                        sent -= head.nbytes
                        bufs.pop(0)
                    else:  # partial send: resume inside this buffer
                        bufs[0] = head[sent:]
                        sent = 0
            if not bufs:
                self.zero_copy_flushes += 1
                return
        writer.write(b"".join(bufs))
        await writer.drain()

    async def _respond_loop(self, pending, writer) -> None:
        """Write responses in request order; drain on a dead client.

        Responses are coalesced: when one shard batch completes it
        resolves up to ``max_batch`` futures at once, and writing each
        as its own frame would cost a syscall apiece.  Finished frames
        accumulate as a buffer list — a
        :func:`protocol.encode_response_prefix` header per response,
        payload buffers appended as-is — and flush scatter-gather via
        :meth:`_send_buffers` the moment the responder would otherwise
        block (empty pending queue, or a request whose shard futures
        are still outstanding).  Ring slices stay pinned in ``holds``
        until their bytes are out, then return to their shard's ring —
        on a dead client they are released immediately."""
        alive = True
        parts: List[object] = []
        holds: List[ShmSlice] = []
        frames = 0

        async def flush() -> None:
            nonlocal alive, frames
            frames = 0
            if parts:
                bufs = [
                    memoryview(b).cast("B")
                    for b in parts if _nbytes(b)
                ]
                parts.clear()
                if alive:
                    self.flushes += 1
                    try:
                        await self._send_buffers(writer, bufs)
                    except (
                        ConnectionResetError, BrokenPipeError, OSError,
                    ):
                        alive = False
            for hold in holds:
                hold.release()
            holds.clear()

        while True:
            if pending.empty():
                await flush()
            item = await pending.get()
            if item is None:
                await flush()
                return
            if item[0] != "imm" and not all(
                f.done() for f in item[2]
            ):
                await flush()  # _finish is about to block
            status, payload_parts, item_holds = await self._finish(item)
            self.ops += 1
            if status == ST_BUSY:
                self.busy += 1
            elif status == ST_ERROR:
                self.errors += 1
            elif status == ST_RETRY:
                self.retried += 1
            elif status == ST_DEADLINE:
                self.deadline_misses += 1
            if alive:
                total = sum(_nbytes(b) for b in payload_parts)
                parts.append(
                    protocol.encode_response_prefix(status, total)
                )
                parts.extend(payload_parts)
                holds.extend(item_holds)
                frames += 1
                if frames >= 256:
                    await flush()
            else:
                for hold in item_holds:
                    hold.release()

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        batches = sum(q.batches for q in self.queues)
        batched = sum(q.batched_ops for q in self.queues)
        restarts = sum(
            getattr(b, "restarts", 0) for b in self.backends
        )
        return {
            "ops": self.ops,
            "busy": self.busy,
            "errors": self.errors,
            "retried": self.retried,
            "deadline_misses": self.deadline_misses,
            "restarts": restarts,
            "shards": self.config.shards,
            "backend": self.config.backend,
            "ack": self.config.ack,
            "max_batch": self.config.max_batch,
            "batches": batches,
            "avg_batch": (batched / batches) if batches else 0.0,
            "flushes": self.flushes,
            "zero_copy_flushes": self.zero_copy_flushes,
        }


async def serve_forever(
    config: ServerConfig,
    backends: Optional[List[object]] = None,
    duration: Optional[float] = None,
    ready: Optional["asyncio.Event"] = None,
    announce=None,
) -> dict:
    """Run a server until cancelled (or for ``duration`` seconds)."""
    server = BlockServer(config, backends)
    host, port = await server.start()
    if announce is not None:
        announce(host, port)
    if ready is not None:
        ready.set()
    try:
        if duration is None:
            await asyncio.Event().wait()  # pragma: no cover — forever
        else:
            await asyncio.sleep(duration)
    finally:
        await server.close()
    return server.stats()
