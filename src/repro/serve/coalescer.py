"""Per-shard request coalescing.

Each shard gets one asyncio queue and one single-thread executor.  The
drain task pulls whatever has accumulated (up to ``max_batch`` ops) and
hands the whole burst to the backend in a single ``execute`` call, so
queueing pressure *translates into batch size*: at low load every op
runs alone with minimal latency, under load bursts grow and ride the
volume's batched RMW / bulk-read / destage paths — the classic group
commit dynamic, applied to block serving.

``max_batch=1`` degrades to uncoalesced per-op dispatch, which is
exactly the serial baseline the serving benchmark measures against.

The single-thread executor doubles as the shard's serialisation
guarantee (backends are never entered concurrently) while keeping the
event loop free to accept frames during volume work.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import List, Tuple

from repro.serve.protocol import ST_ERROR
from repro.serve.shard import ShardOp, ShardResult
from repro.util.validation import require_positive


class ShardQueue:
    """Queue + drain task coalescing ops for one shard backend."""

    def __init__(self, backend, max_batch: int = 64) -> None:
        require_positive(max_batch, "max_batch")
        self.backend = backend
        self.max_batch = max_batch
        self.batches = 0
        self.batched_ops = 0
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard"
        )
        self._task: "asyncio.Task | None" = None

    def start(self) -> None:
        """Spawn the drain task on the running loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    def submit_nowait(self, op: ShardOp) -> "asyncio.Future":
        """Enqueue one shard-local op; the future resolves with its
        result.  Synchronous on purpose: the server's frame reader
        enqueues ops in arrival order before yielding to the loop, so
        two ops from one connection can never reorder on the way into
        a shard (the queue itself is unbounded; admission control is
        the bound)."""
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((op, future))
        return future

    async def submit(self, op: ShardOp) -> ShardResult:
        """Enqueue one shard-local op and await its result."""
        return await self.submit_nowait(op)

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch: List[Tuple[ShardOp, "asyncio.Future"]] = [
                await self._queue.get()
            ]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            ops = [op for op, _ in batch]
            try:
                results = await loop.run_in_executor(
                    self._executor, self.backend.execute, ops
                )
                if len(results) != len(ops):  # pragma: no cover — bug guard
                    raise RuntimeError(
                        f"backend answered {len(results)} results "
                        f"for {len(ops)} ops"
                    )
            except Exception as exc:  # noqa: BLE001 — per-op ERROR fanout
                results = [
                    (ST_ERROR, str(exc).encode()) for _ in ops
                ]
            self.batches += 1
            self.batched_ops += len(ops)
            for (_, future), result in zip(batch, results):
                if not future.cancelled():
                    future.set_result(result)

    async def close(self) -> None:
        """Stop draining and shut the backend down."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await asyncio.get_running_loop().run_in_executor(
            self._executor, self.backend.close
        )
        self._executor.shutdown(wait=True)
