"""Per-shard request coalescing.

Each shard gets one asyncio queue and one single-thread executor.  The
drain task pulls whatever has accumulated (up to ``max_batch`` ops) and
hands the whole burst to the backend in a single ``execute`` call, so
queueing pressure *translates into batch size*: at low load every op
runs alone with minimal latency, under load bursts grow and ride the
volume's batched RMW / bulk-read / destage paths — the classic group
commit dynamic, applied to block serving.

``max_batch=1`` degrades to uncoalesced per-op dispatch, which is
exactly the serial baseline the serving benchmark measures against.

The single-thread executor doubles as the shard's serialisation
guarantee (backends are never entered concurrently) while keeping the
event loop free to accept frames during volume work.

Fault semantics are *typed per batch*:

* an op whose request deadline expired while it was still queued is
  dropped before dispatch and answered DEADLINE — it never touched a
  volume, so re-issuing it is trivially safe;
* a batch that dies under a shard crash or batch timeout
  (:class:`~repro.exceptions.ShardCrashedError` /
  :class:`~repro.exceptions.ShardTimeoutError`, typically after the
  supervisor already restarted the worker) answers every op RETRY —
  nothing was acknowledged, clients back off and re-issue;
* any other backend exception answers every op ERROR (a real fault,
  not worth retrying).

The tightest deadline in a batch becomes the batch's execution deadline,
propagated into :meth:`ProcessShard.execute`'s guarded recv.
"""

from __future__ import annotations

import asyncio
import cProfile
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.exceptions import ShardCrashedError, ShardTimeoutError
from repro.serve.protocol import ST_DEADLINE, ST_ERROR, ST_RETRY
from repro.serve.shard import ShardOp, ShardResult
from repro.util.validation import require_positive

#: One queued item: (op, future, absolute monotonic deadline or None).
_Item = Tuple[ShardOp, "asyncio.Future", Optional[float]]


class ShardQueue:
    """Queue + drain task coalescing ops for one shard backend."""

    def __init__(
        self,
        backend,
        max_batch: int = 64,
        profile_path: Optional[str] = None,
    ) -> None:
        require_positive(max_batch, "max_batch")
        self.backend = backend
        self.max_batch = max_batch
        self.batches = 0
        self.batched_ops = 0
        self.retried_ops = 0
        self.deadline_drops = 0
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard"
        )
        self._task: "asyncio.Task | None" = None
        self._profile_path = profile_path
        self._profile = (
            cProfile.Profile() if profile_path is not None else None
        )

    def start(self) -> None:
        """Spawn the drain task on the running loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    def submit_nowait(
        self, op: ShardOp, deadline: Optional[float] = None
    ) -> "asyncio.Future":
        """Enqueue one shard-local op; the future resolves with its
        result.  Synchronous on purpose: the server's frame reader
        enqueues ops in arrival order before yielding to the loop, so
        two ops from one connection can never reorder on the way into
        a shard (the queue itself is unbounded; admission control is
        the bound).  ``deadline`` is an absolute ``time.monotonic()``
        instant: an op still queued past it is answered DEADLINE
        instead of dispatched."""
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((op, future, deadline))
        return future

    async def submit(
        self, op: ShardOp, deadline: Optional[float] = None
    ) -> ShardResult:
        """Enqueue one shard-local op and await its result."""
        return await self.submit_nowait(op, deadline)

    def _execute(self, ops, deadline):
        """Run one batch on the executor thread (profiled if asked)."""
        if self._profile is None:
            return self.backend.execute(ops, deadline=deadline)
        self._profile.enable()
        try:
            return self.backend.execute(ops, deadline=deadline)
        finally:
            self._profile.disable()

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch: List[_Item] = [await self._queue.get()]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            # expire ops whose deadline lapsed while they waited —
            # dropped strictly before dispatch, so DEADLINE always
            # means "never ran"
            now = time.monotonic()
            live: List[_Item] = []
            for item in batch:
                _, future, deadline = item
                if deadline is not None and deadline <= now:
                    self.deadline_drops += 1
                    if not future.cancelled():
                        future.set_result((ST_DEADLINE, b""))
                    self._queue.task_done()
                else:
                    live.append(item)
            if not live:
                continue
            ops = [op for op, _, _ in live]
            deadlines = [d for _, _, d in live if d is not None]
            batch_deadline = min(deadlines) if deadlines else None
            try:
                results = await loop.run_in_executor(
                    self._executor,
                    functools.partial(
                        self._execute, ops, batch_deadline
                    ),
                )
                if len(results) != len(ops):  # pragma: no cover — bug guard
                    raise RuntimeError(
                        f"backend answered {len(results)} results "
                        f"for {len(ops)} ops"
                    )
            except (ShardCrashedError, ShardTimeoutError) as exc:
                # the supervisor (if any) already restarted the worker;
                # nothing in this batch was acknowledged → typed RETRY
                self.retried_ops += len(ops)
                results = [(ST_RETRY, str(exc).encode()) for _ in ops]
            except Exception as exc:  # noqa: BLE001 — per-op ERROR fanout
                results = [
                    (ST_ERROR, str(exc).encode()) for _ in ops
                ]
            self.batches += 1
            self.batched_ops += len(ops)
            for (_, future, _), result in zip(live, results):
                if not future.cancelled():
                    future.set_result(result)
                else:
                    # nobody will consume this payload; a ring slice
                    # must go back to the ring, not wait for retire
                    payload = result[1]
                    if hasattr(payload, "release"):
                        payload.release()
                self._queue.task_done()

    async def drain(self) -> None:
        """Wait until every op enqueued so far has been answered."""
        await self._queue.join()

    async def close(self) -> None:
        """Stop draining and shut the backend down."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await asyncio.get_running_loop().run_in_executor(
            self._executor, self.backend.close
        )
        self._executor.shutdown(wait=True)
        if self._profile is not None:
            self._profile.dump_stats(self._profile_path)
            self._profile = None
